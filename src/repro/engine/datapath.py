"""Execute tier: batched memory datapath over a core's port state.

:class:`BatchDatapath` runs an :class:`~repro.engine.plan.AccessPlan`
through the same functional state a :class:`~repro.memory.hierarchy.
CorePort` owns — the per-set line dicts of L1/L2/L3, the TLB, the
prefetch engines, the DRAM IMC counters — but processes whole line
arrays per segment with the per-line dict operations inlined and every
counter accumulated in locals, flushed once per plan.

Equivalence contract (gated by ``repro conformance --diff engine`` and
``tests/engine``): for any plan, the final cache/TLB/prefetcher state,
every :class:`~repro.memory.hierarchy.BatchStats` counter, every
per-level :class:`~repro.memory.cache.CacheStats` field, and every IMC
CAS counter are identical to dispatching the plan's emissions one call
at a time through the port's per-line reference path.  The inlined
branches below mirror ``CorePort._demand_lines`` / ``_nt_store_lines``
/ ``software_prefetch`` / ``flush_lines`` and the fill/absorb chains
statement for statement; order-independent integer counters are summed
locally and applied in bulk.

Three compile-tier precomputations feed the loop (see
:mod:`repro.engine.plan`):

* per-segment **page-transition lists** replace the per-line
  ``page != last_page`` check — only a segment's first line can match
  the runtime TLB cursor, every internal transition is walked
  unconditionally in precomputed order,
* **resolved homes** and the plan-level ``single_home`` flag skip the
  per-segment DRAM-home bookkeeping for the common one-node case,
* integer **opcodes** replace string kind dispatch.

When the enabled prefetch engines are exactly the stock trio
(next-line, streamer, IP-stride — in canonical order, stock training
flags), their ``observe`` bodies are *inlined* into the demand loop
with the stride site state hoisted per segment and table ticks kept in
locals; this is a fast-engine-only optimisation (the reference path
keeps calling ``observe``), preserved bit-for-bit by construction and
checked by the cross-engine gates.  Any other engine set — ablation
subclasses, custom factories, reordered trios — takes the generic
observe-call loop.

When any cache level does not use the dict-LRU fast representation
(e.g. the L3 replacement-policy ablation), the datapath falls back to
segment-granular port calls — still one call per plan segment instead
of one per emission, and still plan-cache amortised.

Trace emission is plan-granular: one ``cache`` event, one ``dram``
event per touched home node, and one ``prefetch`` event per executed
plan, stamped at the interpreter's phase cursor.  Consumers already
aggregate batch events (windowing reads ``phase`` events only), so
only the granularity changes, never the sums.
"""

from __future__ import annotations

import ctypes
from itertools import repeat
from typing import TYPE_CHECKING

import numpy as np

from ..memory.hierarchy import BatchStats
from ..obs.spans import SPANS
from ..prefetch.arraystate import ArrayStreamPrefetcher, ArrayStridePrefetcher
from ..prefetch.nextline import NextLinePrefetcher
from ..prefetch.stream import StreamPrefetcher, _PageTracker
from ..prefetch.stride import StridePrefetcher, _SiteState
from . import ckernel

if TYPE_CHECKING:  # pragma: no cover
    from ..memory.hierarchy import CorePort
    from .plan import AccessPlan

#: pop() default distinguishing "absent" from any stored dirty bit
_MISS = object()


class BatchDatapath:
    """Executes access plans against one core's port state."""

    def __init__(self, port: "CorePort") -> None:
        self.port = port
        # the inlined loop requires every level in the dict-LRU
        # representation; anything else (policy ablations, custom
        # backends) takes the exact segment-call fallback
        self._inline = port.l1._fast and port.l2._fast and port.l3._fast
        # array-backend hierarchies execute plans through the compiled C
        # kernel sharing the same numpy state; the hierarchy only adopts
        # the array backend when the kernel loaded, but keep the guard so
        # a REPRO_CKERNEL flip mid-process degrades instead of crashing
        self._use_c = port.hierarchy.array_mode and ckernel.lib() is not None
        # symbolic (size-polymorphic) plans carry no segment list, so
        # they are only legal on the inline or compiled datapaths; the
        # segment-granular fallback needs concrete plans
        self._symbolic_ok = self._inline or self._use_c
        # engine specialization cached per control-mask value (the
        # enabled set only changes when the simulated MSR is written)
        self._spec = None
        self._ctx = None
        self._cmask = None

    def _engine_spec(self):
        """(mask, engines, fastpf, nl, sm, st) for the current MSR mask.

        ``fastpf`` is True when the enabled engines are exactly the
        stock trio (any subset, canonical order, stock training flags)
        so their observe bodies may be inlined; ``nl``/``sm``/``st``
        are the matched instances.  The per-core prefetcher list is
        fixed at machine construction, so the result is a pure function
        of the control mask and can be cached on it.
        """
        port = self.port
        control = port.hierarchy.prefetch_control
        mask = control.mask
        spec = self._spec
        if spec is not None and spec[0] == mask:
            return spec
        engines = [
            engine
            for engine in port.hierarchy.prefetchers_of(port.core_id)
            if control.is_enabled(engine.kind)
        ]
        nl = sm = st = None
        fastpf = True
        for engine in engines:
            te = type(engine)
            if te is NextLinePrefetcher and nl is None \
                    and not engine.train_on_hits:
                nl = engine
            elif te is StreamPrefetcher and sm is None \
                    and not engine.train_on_hits:
                sm = engine
            elif te is StridePrefetcher and st is None \
                    and engine.train_on_hits:
                st = engine
            else:
                fastpf = False
                break
        if fastpf and engines != [e for e in (nl, sm, st) if e is not None]:
            fastpf = False
        if not fastpf:
            nl = sm = st = None
        spec = (mask, engines, fastpf, nl, sm, st)
        self._spec = spec
        return spec

    # ------------------------------------------------------------------
    # single straight-line access (the interpreter's non-loop path)
    # ------------------------------------------------------------------
    def execute_single(self, line: int, is_write: bool, node):
        """One single-line demand access, or ``None`` to defer.

        Fast-engine analogue of ``port.access_lines([line], ...)`` for
        the overwhelmingly common straight-line case: an L1 hit whose
        stride observation issues no prefetch work (no candidates, or
        only candidates already resident in L1/L2 — which the reference
        ``_hw_prefetch`` skips without touching any counter).  Anything
        else — L1 miss, unspecialized engines, a candidate that would
        actually fill — returns ``None`` *before mutating any state* so
        the caller takes the reference path.  Counters, trace emission
        (one batch event per access, same as ``access_lines``), and
        prefetcher state transitions are identical by construction.
        """
        port = self.port
        l1 = port.l1
        set1 = l1._sets[line & l1._set_mask]
        if line not in set1:
            spec = self._engine_spec()
            if not spec[2]:
                return None
            return self._single_miss(line, is_write, node, spec)
        spec = self._engine_spec()
        if not spec[2]:
            return None
        st = spec[5]
        ss = None
        cands = ()
        if st is not None:
            ss = st._table.get(0)
            if ss is not None:
                d = line - ss.last_line
                if d and -st._max_stride <= d <= st._max_stride:
                    new_conf = ss.confidence + 1 if d == ss.stride else 1
                    if new_conf >= st._threshold:
                        cands = [line + d * (k + 1)
                                 for k in range(st.degree)]
                        if cands[0] < 0 or cands[-1] < 0:
                            cands = [c for c in cands if c >= 0]
                        l2 = port.l2
                        s1, m1 = l1._sets, l1._set_mask
                        s2, m2 = l2._sets, l2._set_mask
                        for cand in cands:
                            if cand not in s2[cand & m2] \
                                    and cand not in s1[cand & m1]:
                                return None  # would fill: reference path
        # ---- commit point: state mutations below are exact ----------
        tlbm = tlbw = 0
        page = line >> port._page_shift
        if page != port._last_page:
            port._last_page = page
            walk = port.tlb.translate_page(page)
            if walk:
                tlbm = 1
                tlbw = walk
        set1[line] = set1.pop(line) or is_write
        l1.stats.hits += 1
        if st is not None:
            st._tick += 1
            if ss is None:
                if len(st._table) >= st._sites_max:
                    table = st._table
                    del table[min(table, key=lambda s: table[s].lru_tick)]
                st._table[0] = _SiteState(last_line=line,
                                          lru_tick=st._tick)
            else:
                ss.lru_tick = st._tick
                d = line - ss.last_line
                ss.last_line = line
                if d == 0 or d > st._max_stride or d < -st._max_stride:
                    ss.confidence = 0
                    ss.stride = 0
                else:
                    if d == ss.stride:
                        ss.confidence += 1
                    else:
                        ss.stride = d
                        ss.confidence = 1
                    if ss.confidence >= st._threshold:
                        # all candidates resident (checked above): the
                        # reference engine only counts them as issued
                        st.stats.issued += len(cands)
        stats = BatchStats(accesses=1, l1_hits=1,
                           tlb_misses=tlbm, tlb_walk_cycles=tlbw)
        port.totals.merge(stats)
        if port.bus.enabled:
            port._emit_batch(stats, port.node if node is None else node)
        return stats

    def _single_miss(self, line: int, is_write: bool, node, spec):
        """One single-line demand access that misses L1.

        The full demand chain — fill path, eviction absorbs, and the
        stock prefetcher observes — inlined for exactly one line with
        direct stats updates, sparing the deferred route through
        :meth:`execute_plan` (whose hoist/flush preamble is all fixed
        cost at one line).  Counter-for-counter identical to replaying
        a one-line plan; only reachable under the specialized engine
        trio (``spec[2]``).
        """
        port = self.port
        l1, l2, l3 = port.l1, port.l2, port.l3
        s1, m1, a1 = l1._sets, l1._set_mask, l1._assoc
        s2, m2, a2 = l2._sets, l2._set_mask, l2._assoc
        s3, m3, a3 = l3._sets, l3._set_mask, l3._assoc
        prefetched = port._prefetched
        _mask, engines, _fastpf, nl, sm, st = spec
        rhome = port.node if node is None else node
        remote = rhome != port.node

        tlbm = tlbw = 0
        page = line >> port._page_shift
        if page != port._last_page:
            port._last_page = page
            walk = port.tlb.translate_page(page)
            if walk:
                tlbm = 1
                tlbw = walk

        l2h = l3h = drd = wbk = rem = 0
        e1 = e2 = e3 = hwi = pfr = pfu = 0
        c1d = c2f = c2d = c3h = c3m = c3f = c3d = 0
        occ1 = occ2 = occ3 = 0

        def absorb_l3(vline):
            nonlocal c3f, c3d, e3, occ3, wbk
            aset = s3[vline & m3]
            if vline in aset:
                aset[vline] = True
                return
            c3f += 1
            if len(aset) >= a3:
                vd = aset.pop(next(iter(aset)))
                e3 += 1
                if vd:
                    c3d += 1
                    wbk += 1
            else:
                occ3 += 1
            aset[vline] = True

        def absorb_l2(vline):
            nonlocal c2f, c2d, e2, occ2
            aset = s2[vline & m2]
            if vline in aset:
                aset[vline] = True
                return
            c2f += 1
            if len(aset) >= a2:
                victim = next(iter(aset))
                vd = aset.pop(victim)
                e2 += 1
                if vd:
                    c2d += 1
                    absorb_l3(victim)
            else:
                occ2 += 1
            aset[vline] = True

        def hw_fill(pline):
            nonlocal hwi, pfr, wbk
            nonlocal c2f, c2d, c3h, c3m, c3f, c3d
            nonlocal e2, e3, occ2, occ3
            hwi += 1
            pset3 = s3[pline & m3]
            pv = pset3.pop(pline, _MISS)
            if pv is not _MISS:
                pset3[pline] = pv
                c3h += 1
            else:
                c3m += 1
                pfr += 1
                c3f += 1
                if len(pset3) >= a3:
                    vd = pset3.pop(next(iter(pset3)))
                    e3 += 1
                    if vd:
                        c3d += 1
                        wbk += 1
                else:
                    occ3 += 1
                pset3[pline] = False
            pset2 = s2[pline & m2]
            c2f += 1
            if len(pset2) >= a2:
                victim = next(iter(pset2))
                pv = pset2.pop(victim)
                e2 += 1
                if pv:
                    c2d += 1
                    absorb_l3(victim)
            else:
                occ2 += 1
            pset2[pline] = False
            prefetched.add(pline)

        # demand lookup past L1 (the caller established the L1 miss)
        set2 = s2[line & m2]
        v = set2.pop(line, _MISS)
        if v is not _MISS:
            set2[line] = v
            l2h = 1
            if line in prefetched:
                prefetched.discard(line)
                pfu = 1
                for engine in engines:
                    engine.stats.useful += 1
        else:
            set3 = s3[line & m3]
            v = set3.pop(line, _MISS)
            if v is not _MISS:
                set3[line] = v
                l3h = 1
                if line in prefetched:
                    prefetched.discard(line)
                    pfu = 1
            else:
                drd = 1
                if remote:
                    rem = 1
                # fill L3 (absent)
                if len(set3) >= a3:
                    vd = set3.pop(next(iter(set3)))
                    e3 += 1
                    if vd:
                        c3d += 1
                        wbk += 1
                else:
                    occ3 += 1
                set3[line] = False
            # fill L2 (absent: the L2 miss branch)
            if len(set2) >= a2:
                victim = next(iter(set2))
                vd = set2.pop(victim)
                e2 += 1
                if vd:
                    c2d += 1
                    absorb_l3(victim)
            else:
                occ2 += 1
            set2[line] = False
        # fill L1 (absent: the caller's miss check)
        set1 = s1[line & m1]
        if len(set1) >= a1:
            victim = next(iter(set1))
            vd = set1.pop(victim)
            e1 += 1
            if vd:
                c1d += 1
                absorb_l2(victim)
        else:
            occ1 += 1
        set1[line] = is_write

        # next-line engine (observes misses only)
        if nl is not None:
            nxt = line + 1
            if nxt % nl._lines_per_page:
                nl.stats.issued += 1
                if nxt not in s2[nxt & m2] and nxt not in s1[nxt & m1]:
                    hw_fill(nxt)

        # streamer (observes misses only)
        if sm is not None:
            sm._tick += 1
            sm_lpp = sm._lines_per_page
            sm_table = sm._table
            spage = line // sm_lpp
            tr = sm_table.get(spage)
            if tr is None:
                if len(sm_table) >= sm._trackers_max:
                    del sm_table[min(
                        sm_table, key=lambda p: sm_table[p].lru_tick)]
                sm_table[spage] = _PageTracker(
                    last_line=line, frontier=line, lru_tick=sm._tick)
            else:
                tr.lru_tick = sm._tick
                delta = line - tr.last_line
                tr.last_line = line
                if delta:
                    dirn = 1 if delta > 0 else -1
                    if dirn == tr.direction:
                        conf = tr.confidence + 1
                    else:
                        tr.direction = dirn
                        conf = 1
                        tr.frontier = line
                    tr.confidence = conf
                    if conf >= sm._threshold:
                        pfirst = spage * sm_lpp
                        sm_rng = None
                        if dirn > 0:
                            start = tr.frontier + 1
                            lo = line + 1
                            if start < lo:
                                start = lo
                            end = line + sm.distance
                            plast = pfirst + sm_lpp - 1
                            if end > plast:
                                end = plast
                            n = end - start + 1
                            if n > 0:
                                if n > sm.degree:
                                    n = sm.degree
                                end = start + n - 1
                                tr.frontier = end
                                sm.stats.issued += n
                                sm_rng = range(start, end + 1)
                        else:
                            start = tr.frontier - 1
                            hi = line - 1
                            if start > hi:
                                start = hi
                            end = line - sm.distance
                            if end < pfirst:
                                end = pfirst
                            n = start - end + 1
                            if n > 0:
                                if n > sm.degree:
                                    n = sm.degree
                                end = start - n + 1
                                tr.frontier = end
                                sm.stats.issued += n
                                sm_rng = range(start, end - 1, -1)
                        if sm_rng is not None:
                            for p in sm_rng:
                                if p in s2[p & m2] or p in s1[p & m1]:
                                    continue
                                hw_fill(p)

        # IP-stride engine (observes hits and misses)
        if st is not None:
            st._tick += 1
            table = st._table
            ss = table.get(0)
            if ss is None:
                if len(table) >= st._sites_max:
                    del table[min(
                        table, key=lambda s: table[s].lru_tick)]
                table[0] = _SiteState(last_line=line, lru_tick=st._tick)
            else:
                ss.lru_tick = st._tick
                d = line - ss.last_line
                ss.last_line = line
                maxs = st._max_stride
                if d == 0 or d > maxs or d < -maxs:
                    ss.confidence = 0
                    ss.stride = 0
                else:
                    if d == ss.stride:
                        ss.confidence += 1
                    else:
                        ss.stride = d
                        ss.confidence = 1
                    if ss.confidence >= st._threshold:
                        deg = st.degree
                        if line + d * deg < 0:
                            cands = [c for k in range(deg)
                                     if (c := line + d * (k + 1)) >= 0]
                        else:
                            cands = range(line + d,
                                          line + d * deg + d, d)
                        st.stats.issued += len(cands)
                        for p in cands:
                            if p in s2[p & m2] or p in s1[p & m1]:
                                continue
                            hw_fill(p)

        # ---- flush: stats deltas for exactly one demand line --------
        cs = l1.stats
        cs.misses += 1
        cs.fills += 1
        cs.evictions += e1
        cs.dirty_evictions += c1d
        cs = l2.stats
        cs.hits += l2h
        cs.misses += 1 - l2h
        cs.fills += (1 - l2h) + c2f
        cs.evictions += e2
        cs.dirty_evictions += c2d
        dm3 = 1 - l2h - l3h
        cs = l3.stats
        cs.hits += l3h + c3h
        cs.misses += dm3 + c3m
        cs.fills += dm3 + c3f
        cs.evictions += e3
        cs.dirty_evictions += c3d
        l1._resident += occ1
        l2._resident += occ2
        l3._resident += occ3
        if drd or pfr or wbk:
            counters = port.hierarchy.dram[rhome].counters
            counters.cas_reads += drd + pfr
            counters.cas_writes += wbk
            homes = {rhome: [drd, pfr, wbk, rem]}
        else:
            homes = {}
        stats = BatchStats(
            accesses=1, l2_hits=l2h, l3_hits=l3h, dram_reads=drd,
            writebacks=wbk, l1_evictions=e1, l2_evictions=e2,
            l3_evictions=e3, hw_prefetch_issued=hwi,
            hw_prefetch_dram_reads=pfr, prefetch_useful=pfu,
            remote_dram_lines=rem, tlb_misses=tlbm, tlb_walk_cycles=tlbw,
        )
        port.totals.merge(stats)
        if port.bus.enabled:
            port.emit_plan_batch(stats, homes)
        return stats

    # ------------------------------------------------------------------
    # fallback: segment-granular port calls (exact by construction)
    # ------------------------------------------------------------------
    def _execute_segments(self, plan: "AccessPlan") -> BatchStats:
        port = self.port
        batch = BatchStats()
        for seg in plan.segments:
            kind = seg.kind
            if kind == "prefetch":
                stats = port.software_prefetch(seg.lines, node=seg.home)
            elif kind == "flush":
                stats = port.flush_lines(seg.lines, node=seg.home)
            else:
                stats = port.access_lines(
                    seg.lines,
                    is_write=(kind in ("store", "ntstore")),
                    nt=(kind == "ntstore"),
                    node=seg.home,
                    stream_id=seg.stream_id,
                )
            batch.merge(stats)
        return batch

    # ------------------------------------------------------------------
    # inlined dict-LRU datapath
    # ------------------------------------------------------------------
    def execute_plan(self, plan: "AccessPlan") -> BatchStats:
        with SPANS("engine.execute"):
            if self._use_c:
                return self._execute_c(plan)
            if not self._inline:
                return self._execute_segments(plan)
            return self._execute_inline(plan)

    # ------------------------------------------------------------------
    # compiled kernel path (array-backend hierarchies)
    # ------------------------------------------------------------------
    def _build_ctx(self) -> "ckernel.Ctx":
        """Materialise the C context over the port's array state.

        Every pointer references numpy storage that is mutated strictly
        in place by the Python fallbacks (cache ``clear``, TLB ``flush``,
        prefetcher ``reset``), so the context stays valid across busts.
        The one reallocating structure — the prefetched-line hash set —
        is re-pointed before every kernel call (``_execute_c``).
        """
        port = self.port
        hier = port.hierarchy
        ctx = ckernel.Ctx()
        for i, cache in enumerate((port.l1, port.l2, port.l3)):
            ctx.tags[i] = cache._tags.ctypes.data
            ctx.dirty[i] = cache._adirty.ctypes.data
            ctx.stamp[i] = cache._stamp.ctypes.data
            ctx.set_mask[i] = cache._set_mask
            ctx.assoc[i] = cache._assoc
        tlb = port.tlb
        ctx.tlb1_pages = tlb.l1_pages.ctypes.data
        ctx.tlb1_stamp = tlb.l1_stamp.ctypes.data
        ctx.tlb2_pages = tlb.l2_pages.ctypes.data
        ctx.tlb2_stamp = tlb.l2_stamp.ctypes.data
        ctx.tlb_regs = tlb.regs.ctypes.data
        ctx.tlb1_entries = tlb.config.l1_entries
        ctx.tlb2_entries = tlb.config.l2_entries
        ctx.walk_latency = tlb.config.walk_latency_cycles
        pf = port._prefetched
        ctx.pf_slots = pf.slots.ctypes.data
        ctx.pf_regs = pf.regs.ctypes.data
        ctx.pf_mask = pf._mask
        self._pf_ref = pf.slots
        nl = sm = st = None
        for engine in hier.prefetchers_of(port.core_id):
            if isinstance(engine, ArrayStridePrefetcher):
                st = engine
            elif isinstance(engine, ArrayStreamPrefetcher):
                sm = engine
            elif isinstance(engine, NextLinePrefetcher):
                nl = engine
        self._c_nl, self._c_sm, self._c_st = nl, sm, st
        ctx.st_keys = st.keys.ctypes.data
        ctx.st_last = st.last.ctypes.data
        ctx.st_strd = st.strd.ctypes.data
        ctx.st_conf = st.conf.ctypes.data
        ctx.st_lruv = st.lruv.ctypes.data
        ctx.st_regs = st.regs.ctypes.data
        ctx.st_sites = st._sites_max
        ctx.st_deg = st.degree
        ctx.st_thr = st._threshold
        ctx.st_maxs = st._max_stride
        ctx.sm_keys = sm.keys.ctypes.data
        ctx.sm_last = sm.last.ctypes.data
        ctx.sm_dirn = sm.dirn.ctypes.data
        ctx.sm_conf = sm.conf.ctypes.data
        ctx.sm_front = sm.front.ctypes.data
        ctx.sm_lruv = sm.lruv.ctypes.data
        ctx.sm_regs = sm.regs.ctypes.data
        ctx.sm_trackers = sm._trackers_max
        ctx.sm_deg = sm.degree
        ctx.sm_dist = sm.distance
        ctx.sm_thr = sm._threshold
        ctx.sm_lpp = sm._lines_per_page
        ctx.nl_lpp = nl._lines_per_page
        ctx.page_shift = port._page_shift
        self._regs = np.zeros(4, dtype=np.int64)
        self._homes = np.zeros((len(hier.dram), 4), dtype=np.int64)
        self._out = np.zeros(ckernel.OUT_COUNT, dtype=np.int64)
        ctx.regs = self._regs.ctypes.data
        ctx.homes = self._homes.ctypes.data
        lib = ckernel.lib()
        # per-call invariants hoisted: the bound C functions, the byref
        # wrapper, and the out-array pointer (ndarray.ctypes costs a
        # wrapper object per access, visible at single-access rates)
        self._fn_plan = lib.repro_execute_plan
        self._fn_single = lib.repro_execute_single
        self._ctx_ref = ctypes.byref(ctx)
        self._out_ptr = self._out.ctypes.data
        self._cmask = None  # force a flag sync on first use
        self._hit_stats = {}
        self._ctx = ctx
        return ctx

    def _sync_flags(self) -> None:
        """Refresh the per-call enable flags from the simulated MSR."""
        control = self.port.hierarchy.prefetch_control
        mask = control.mask
        if mask == self._cmask:
            return
        self._cmask = mask
        ctx = self._ctx
        ctx.nl_on = 1 if control.is_enabled(self._c_nl.kind) else 0
        ctx.sm_on = 1 if control.is_enabled(self._c_sm.kind) else 0
        ctx.st_on = 1 if control.is_enabled(self._c_st.kind) else 0
        # useful-hit attribution goes to every *enabled* engine, in the
        # per-core list order, exactly like the reference observe loop
        self._c_engines = [
            engine
            for engine in self.port.hierarchy.prefetchers_of(self.port.core_id)
            if control.is_enabled(engine.kind)
        ]

    def _pre_call(self, room: int) -> "ckernel.Ctx":
        """Shared setup before a kernel entry: context, flags, pf-set
        capacity, and register sync (cache ticks + TLB page cursor)."""
        ctx = self._ctx
        if ctx is None:
            ctx = self._build_ctx()
        self._sync_flags()
        port = self.port
        pf = port._prefetched
        pf.ensure_room(room)
        slots = pf.slots
        if slots is not self._pf_ref:
            # reallocated — by ensure_room here, or by a Python-side
            # insert (multi-line singles route through access_lines)
            self._pf_ref = slots
            ctx.pf_slots = slots.ctypes.data
            ctx.pf_mask = pf._mask
        regs = self._regs
        regs[0] = port.l1._tick
        regs[1] = port.l2._tick
        regs[2] = port.l3._tick
        regs[3] = port._last_page
        return ctx

    def _post_call(self) -> None:
        port = self.port
        regs = self._regs
        port.l1._tick = int(regs[0])
        port.l2._tick = int(regs[1])
        port.l3._tick = int(regs[2])
        port._last_page = int(regs[3])

    def _execute_c(self, plan: "AccessPlan") -> BatchStats:
        packed = plan.packed
        if packed is None:
            packed = plan.ensure_packed()
        # worst case inserts per demand line: degree prefetch candidates
        # per engine (2+2+1) plus the line itself, rounded up
        self._pre_call(6 * plan.total_lines + 8)
        meta_p, lines_p, sids_p = packed.ptrs
        self._fn_plan(self._ctx_ref, packed.nruns, meta_p, lines_p,
                      sids_p, self._out_ptr)
        self._post_call()
        return self._apply_out(self._out.tolist())

    def execute_single_c(self, line: int, is_write: bool, node) -> BatchStats:
        """One single-line demand access through the compiled kernel."""
        port = self.port
        rhome = port.node if node is None else node
        self._pre_call(8)
        self._fn_single(self._ctx_ref, line, 1 if is_write else 0, rhome,
                        1 if rhome != port.node else 0, self._out_ptr)
        self._post_call()
        o = self._out.tolist()
        if o[1] == 1 and o[11] == 0:
            # pure L1 hit with no hardware prefetch fill: nothing was
            # filled or evicted anywhere, and the only engine that can
            # have observed is the stride table (train-on-hits), whose
            # candidates — if any — were all resident (issued-only)
            port.l1.stats.hits += 1
            tacc = o[37]
            if tacc:
                ts = port.tlb.stats
                ts.accesses += tacc
                ts.l1_hits += o[38]
                ts.l2_hits += o[39]
                ts.walks += o[40]
            sti = o[35]
            if sti:
                self._c_st.stats.issued += sti
            tlbm = o[16]
            tlbw = o[17]
            key = (tlbm, tlbw)
            stats = self._hit_stats.get(key)
            if stats is None:
                stats = self._hit_stats[key] = BatchStats(
                    accesses=1, l1_hits=1, tlb_misses=tlbm,
                    tlb_walk_cycles=tlbw,
                )
            tot = port.totals
            tot.accesses += 1
            tot.l1_hits += 1
            tot.tlb_misses += tlbm
            tot.tlb_walk_cycles += tlbw
            if port.bus.enabled:
                port._emit_batch(stats, rhome)
            return stats
        return self._apply_out(o)

    def _apply_out(self, o: list) -> BatchStats:
        """Apply one kernel invocation's counter block to Python state.

        Mirrors the bulk-flush epilogue of ``_execute_inline`` line for
        line: derived demand-path CacheStats, occupancy deltas, TLB
        stats, per-engine issue/useful attribution, IMC CAS counters,
        and the plan-granular trace emission.
        """
        (acc, l1h, l2h, l3h, drd, wbk, ntl,
         e1, e2, e3, swp, hwi, pfr, pfu, rem, fls,
         tlbm, tlbw, dacc,
         c1f, c1d, c1i, c2f, c2d, c2i,
         c3h, c3m, c3f, c3d, c3i,
         occ1, occ2, occ3,
         nli, smi, sti, useful,
         tacc, t1h, t2h, twalk) = o
        port = self.port
        stats = BatchStats(
            accesses=acc, l1_hits=l1h, l2_hits=l2h, l3_hits=l3h,
            dram_reads=drd, writebacks=wbk, nt_lines=ntl,
            l1_evictions=e1, l2_evictions=e2, l3_evictions=e3,
            sw_prefetches=swp, hw_prefetch_issued=hwi,
            hw_prefetch_dram_reads=pfr, prefetch_useful=pfu,
            remote_dram_lines=rem, flushes=fls,
            tlb_misses=tlbm, tlb_walk_cycles=tlbw,
        )
        dm1 = dacc - l1h
        dm2 = dm1 - l2h
        dm3 = dm2 - l3h
        cs = port.l1.stats
        cs.hits += l1h
        cs.misses += dm1
        cs.fills += dm1 + c1f
        cs.evictions += e1
        cs.dirty_evictions += c1d
        cs.invalidations += c1i
        cs = port.l2.stats
        cs.hits += l2h
        cs.misses += dm2
        cs.fills += dm2 + c2f
        cs.evictions += e2
        cs.dirty_evictions += c2d
        cs.invalidations += c2i
        cs = port.l3.stats
        cs.hits += l3h + c3h
        cs.misses += dm3 + c3m
        cs.fills += dm3 + c3f
        cs.evictions += e3
        cs.dirty_evictions += c3d
        cs.invalidations += c3i
        port.l1._resident += occ1
        port.l2._resident += occ2
        port.l3._resident += occ3
        ts = port.tlb.stats
        ts.accesses += tacc
        ts.l1_hits += t1h
        ts.l2_hits += t2h
        ts.walks += twalk
        if nli:
            self._c_nl.stats.issued += nli
        if smi:
            self._c_sm.stats.issued += smi
        if sti:
            self._c_st.stats.issued += sti
        if useful:
            for engine in self._c_engines:
                engine.stats.useful += useful
        homes = {}
        harr = self._homes
        drams = port.hierarchy.dram
        for node, rec in enumerate(harr.tolist()):
            dr, pf_rd, wr, rm = rec
            if dr or pf_rd or wr or rm:
                counters = drams[node].counters
                counters.cas_reads += dr + pf_rd
                counters.cas_writes += wr
                homes[node] = [dr, pf_rd, wr, rm]
        if homes:
            harr.fill(0)
        port.totals.merge(stats)
        if port.bus.enabled:
            port.emit_plan_batch(stats, homes)
        return stats

    def _execute_inline(self, plan: "AccessPlan") -> BatchStats:
        port = self.port
        hier = port.hierarchy
        l1, l2, l3 = port.l1, port.l2, port.l3
        s1, s2, s3 = l1._sets, l2._sets, l3._sets
        m1, m2, m3 = l1._set_mask, l2._set_mask, l3._set_mask
        a1, a2, a3 = l1._assoc, l2._assoc, l3._assoc
        prefetched = port._prefetched
        translate = port.tlb.translate_page
        last_page = port._last_page
        # engine specialization: exactly the stock trio (any subset, in
        # canonical order, stock training flags) gets its observe
        # bodies inlined below; anything else takes the generic loop
        _mask, engines, fastpf, nl, sm, st = self._engine_spec()
        if not fastpf:
            hit_engines = [e for e in engines if e.train_on_hits]

        if st is not None:
            st_table = st._table
            st_tick = st._tick
            st_max = st._sites_max
            st_deg = st.degree
            st_thr = st._threshold
            st_maxs = st._max_stride
            st_issued = 0
        if sm is not None:
            sm_table = sm._table
            sm_tick = sm._tick
            sm_max = sm._trackers_max
            sm_deg = sm.degree
            sm_dist = sm.distance
            sm_thr = sm._threshold
            sm_lpp = sm._lines_per_page
            sm_issued = 0
        if nl is not None:
            nl_lpp = nl._lines_per_page
            nl_issued = 0

        # batch counters (BatchStats fields)
        acc = l1h = l2h = l3h = drd = wbk = ntl = 0
        e1 = e2 = e3 = swp = hwi = pfr = pfu = rem = fls = 0
        tlbm = tlbw = 0
        # demand accesses: the per-level CacheStats hit/miss/fill deltas
        # of the demand path are all derivable from it and l1h/l2h/l3h
        # (each demand miss fills every level below its hit), so the
        # per-line loops below only maintain the *non-demand*
        # contributions (hw/sw prefetch fills, victim absorbs)
        dacc = 0
        c1f = c1d = c1i = 0
        c2f = c2d = c2i = 0
        c3h = c3m = c3f = c3d = c3i = 0
        # resident-line deltas per level
        occ1 = occ2 = occ3 = 0
        # per-home DRAM traffic: [demand_reads, pf_reads, writes, remote]
        homes = {}
        # per-segment DRAM accumulators (single-home plans skip the
        # per-segment roll-up and attribute the plan totals in one step)
        cur_dr = cur_pf = cur_wr = cur_rm = cur_nt = 0
        multi = not plan.single_home
        remote = plan.remote0
        home = plan.home0

        def absorb_l3(line):
            """Inline of ``_absorb_dirty(l3, line)``."""
            nonlocal c3f, c3d, e3, occ3, wbk, cur_wr
            aset = s3[line & m3]
            if line in aset:
                aset[line] = True
                return
            c3f += 1
            if len(aset) >= a3:
                vd = aset.pop(next(iter(aset)))
                e3 += 1
                if vd:
                    c3d += 1
                    wbk += 1
                    cur_wr += 1
            else:
                occ3 += 1
            aset[line] = True

        def absorb_l2(line):
            """Inline of ``_absorb_dirty(l2, line)``."""
            nonlocal c2f, c2d, e2, occ2
            aset = s2[line & m2]
            if line in aset:
                aset[line] = True
                return
            c2f += 1
            if len(aset) >= a2:
                victim = next(iter(aset))
                vd = aset.pop(victim)
                e2 += 1
                if vd:
                    c2d += 1
                    absorb_l3(victim)
            else:
                occ2 += 1
            aset[line] = True

        def hw_fill(pline):
            """One non-resident hw-prefetch candidate's fill chain
            (the body of ``CorePort._hw_prefetch`` past its residency
            skip; callers check residency inline first)."""
            nonlocal hwi, pfr, wbk, cur_pf, cur_wr
            nonlocal c2f, c2d, c3h, c3m, c3f, c3d
            nonlocal e2, e3, occ2, occ3
            hwi += 1
            pset3 = s3[pline & m3]
            if pline in pset3:
                pset3[pline] = pset3.pop(pline)
                c3h += 1
            else:
                c3m += 1
                pfr += 1
                cur_pf += 1
                # fill L3 (absent)
                c3f += 1
                if len(pset3) >= a3:
                    vd = pset3.pop(next(iter(pset3)))
                    e3 += 1
                    if vd:
                        c3d += 1
                        wbk += 1
                        cur_wr += 1
                else:
                    occ3 += 1
                pset3[pline] = False
            # fill L2 (absent: resident lines were skipped by caller)
            pset2 = s2[pline & m2]
            c2f += 1
            if len(pset2) >= a2:
                victim = next(iter(pset2))
                vd = pset2.pop(victim)
                e2 += 1
                if vd:
                    c2d += 1
                    absorb_l3(victim)
            else:
                occ2 += 1
            pset2[pline] = False
            prefetched.add(pline)

        def hw_prefetch(cands):
            """Inline of ``CorePort._hw_prefetch`` for ``cands``."""
            for pline in cands:
                if pline in s2[pline & m2] or pline in s1[pline & m1]:
                    continue
                hw_fill(pline)

        for seg in plan.runs:
            op = seg.op
            lines = seg.lines
            if not lines:
                continue
            if multi:
                home = seg.rhome
                remote = seg.remote
                cur_dr = cur_pf = cur_wr = cur_rm = cur_nt = 0

            if op <= 1:  # demand: load / gather (0) or store (1)
                # precomputed page transitions: only the first line can
                # coincide with the runtime TLB cursor
                pg = seg.first_page
                if pg != last_page:
                    walk = translate(pg)
                    if walk:
                        tlbm += 1
                        tlbw += walk
                for pg in seg.walk_pages:
                    walk = translate(pg)
                    if walk:
                        tlbm += 1
                        tlbw += walk
                last_page = seg.last_page
                n = len(lines)
                acc += n
                dacc += n
                is_write = op == 1
                sids = seg.sids
                pairs = zip(lines, sids) if sids is not None \
                    else zip(lines, repeat(seg.stream_id))

                if fastpf:
                    # a uniform run (one stream id) hoists that stride
                    # stream's state into locals for the whole run —
                    # safe because no other stream observes during it,
                    # so the table stays fresh and the hoisted entry
                    # cannot be an eviction victim (inserts only happen
                    # when it is absent).  A mixed (fused multi-site)
                    # run switches streams nearly every line, so it
                    # updates table entries directly instead of paying
                    # hoist/writeback churn per line.
                    uniform = sids is None
                    ss = None
                    s_last = s_str = s_conf = 0
                    if uniform and st is not None:
                        ss = st_table.get(seg.stream_id)
                        if ss is not None:
                            s_last = ss.last_line
                            s_str = ss.stride
                            s_conf = ss.confidence
                    for line, sid in pairs:
                        set1 = s1[line & m1]
                        v = set1.pop(line, _MISS)
                        if v is not _MISS:
                            set1[line] = v or is_write
                            l1h += 1
                        else:
                            set2 = s2[line & m2]
                            v = set2.pop(line, _MISS)
                            if v is not _MISS:
                                set2[line] = v
                                l2h += 1
                                if line in prefetched:
                                    prefetched.discard(line)
                                    pfu += 1
                                    for engine in engines:
                                        engine.stats.useful += 1
                            else:
                                set3 = s3[line & m3]
                                v = set3.pop(line, _MISS)
                                if v is not _MISS:
                                    set3[line] = v
                                    l3h += 1
                                    if line in prefetched:
                                        prefetched.discard(line)
                                        pfu += 1
                                else:
                                    drd += 1
                                    cur_dr += 1
                                    if remote:
                                        rem += 1
                                        cur_rm += 1
                                    # fill L3 (absent)
                                    if len(set3) >= a3:
                                        vd = set3.pop(next(iter(set3)))
                                        e3 += 1
                                        if vd:
                                            c3d += 1
                                            wbk += 1
                                            cur_wr += 1
                                    else:
                                        occ3 += 1
                                    set3[line] = False
                                # fill L2 (absent: the L2 miss branch)
                                if len(set2) >= a2:
                                    victim = next(iter(set2))
                                    vd = set2.pop(victim)
                                    e2 += 1
                                    if vd:
                                        c2d += 1
                                        absorb_l3(victim)
                                else:
                                    occ2 += 1
                                set2[line] = False
                            # fill L1 (absent: the L1 miss branch)
                            if len(set1) >= a1:
                                victim = next(iter(set1))
                                vd = set1.pop(victim)
                                e1 += 1
                                if vd:
                                    c1d += 1
                                    absorb_l2(victim)
                            else:
                                occ1 += 1
                            set1[line] = is_write

                            # next-line engine (observes misses only)
                            if nl is not None:
                                nxt = line + 1
                                if nxt % nl_lpp:
                                    nl_issued += 1
                                    if nxt not in s2[nxt & m2] \
                                            and nxt not in s1[nxt & m1]:
                                        # hw_fill, inlined (fires on
                                        # nearly every demand miss)
                                        hwi += 1
                                        pset3 = s3[nxt & m3]
                                        pv = pset3.pop(nxt, _MISS)
                                        if pv is not _MISS:
                                            pset3[nxt] = pv
                                            c3h += 1
                                        else:
                                            c3m += 1
                                            pfr += 1
                                            cur_pf += 1
                                            c3f += 1
                                            if len(pset3) >= a3:
                                                vd = pset3.pop(
                                                    next(iter(pset3)))
                                                e3 += 1
                                                if vd:
                                                    c3d += 1
                                                    wbk += 1
                                                    cur_wr += 1
                                            else:
                                                occ3 += 1
                                            pset3[nxt] = False
                                        pset2 = s2[nxt & m2]
                                        c2f += 1
                                        if len(pset2) >= a2:
                                            victim = next(iter(pset2))
                                            pv = pset2.pop(victim)
                                            e2 += 1
                                            if pv:
                                                c2d += 1
                                                absorb_l3(victim)
                                        else:
                                            occ2 += 1
                                        pset2[nxt] = False
                                        prefetched.add(nxt)

                            # streamer (observes misses only)
                            if sm is not None:
                                sm_tick += 1
                                spage = line // sm_lpp
                                tr = sm_table.get(spage)
                                if tr is None:
                                    if len(sm_table) >= sm_max:
                                        del sm_table[min(
                                            sm_table,
                                            key=lambda p:
                                            sm_table[p].lru_tick)]
                                    sm_table[spage] = _PageTracker(
                                        last_line=line, frontier=line,
                                        lru_tick=sm_tick)
                                else:
                                    tr.lru_tick = sm_tick
                                    delta = line - tr.last_line
                                    tr.last_line = line
                                    if delta:
                                        dirn = 1 if delta > 0 else -1
                                        if dirn == tr.direction:
                                            conf = tr.confidence + 1
                                        else:
                                            tr.direction = dirn
                                            conf = 1
                                            tr.frontier = line
                                        tr.confidence = conf
                                        if conf >= sm_thr:
                                            pfirst = spage * sm_lpp
                                            sm_rng = None
                                            if dirn > 0:
                                                start = tr.frontier + 1
                                                lo = line + 1
                                                if start < lo:
                                                    start = lo
                                                end = line + sm_dist
                                                plast = pfirst + sm_lpp - 1
                                                if end > plast:
                                                    end = plast
                                                n = end - start + 1
                                                if n > 0:
                                                    if n > sm_deg:
                                                        n = sm_deg
                                                    end = start + n - 1
                                                    tr.frontier = end
                                                    sm_issued += n
                                                    sm_rng = range(
                                                        start, end + 1)
                                            else:
                                                start = tr.frontier - 1
                                                hi = line - 1
                                                if start > hi:
                                                    start = hi
                                                end = line - sm_dist
                                                if end < pfirst:
                                                    end = pfirst
                                                n = start - end + 1
                                                if n > 0:
                                                    if n > sm_deg:
                                                        n = sm_deg
                                                    end = start - n + 1
                                                    tr.frontier = end
                                                    sm_issued += n
                                                    sm_rng = range(
                                                        start,
                                                        end - 1, -1)
                                            if sm_rng is not None:
                                                for p in sm_rng:
                                                    if p in s2[p & m2] \
                                                            or p in s1[
                                                                p & m1]:
                                                        continue
                                                    # hw_fill, inlined
                                                    hwi += 1
                                                    pset3 = s3[p & m3]
                                                    pv = pset3.pop(
                                                        p, _MISS)
                                                    if pv is not _MISS:
                                                        pset3[p] = pv
                                                        c3h += 1
                                                    else:
                                                        c3m += 1
                                                        pfr += 1
                                                        cur_pf += 1
                                                        c3f += 1
                                                        if len(pset3) \
                                                                >= a3:
                                                            vd = pset3.pop(
                                                                next(iter(
                                                                    pset3)))
                                                            e3 += 1
                                                            if vd:
                                                                c3d += 1
                                                                wbk += 1
                                                                cur_wr += 1
                                                        else:
                                                            occ3 += 1
                                                        pset3[p] = False
                                                    pset2 = s2[p & m2]
                                                    c2f += 1
                                                    if len(pset2) >= a2:
                                                        victim = next(
                                                            iter(pset2))
                                                        pv = pset2.pop(
                                                            victim)
                                                        e2 += 1
                                                        if pv:
                                                            c2d += 1
                                                            absorb_l3(
                                                                victim)
                                                    else:
                                                        occ2 += 1
                                                    pset2[p] = False
                                                    prefetched.add(p)

                        # IP-stride engine (observes hits and misses);
                        # this is the tail of the line loop, so the
                        # no-candidate exits below `continue` directly
                        if st is None:
                            continue
                        st_tick += 1
                        if uniform:
                            if ss is None:
                                if len(st_table) >= st_max:
                                    del st_table[min(
                                        st_table,
                                        key=lambda s:
                                        st_table[s].lru_tick)]
                                ss = _SiteState(last_line=line,
                                                lru_tick=st_tick)
                                st_table[sid] = ss
                                s_last = line
                                s_str = 0
                                s_conf = 0
                                continue
                            d = line - s_last
                            s_last = line
                            if d == 0 or d > st_maxs or d < -st_maxs:
                                s_conf = 0
                                s_str = 0
                                continue
                            if d == s_str:
                                s_conf += 1
                            else:
                                s_str = d
                                s_conf = 1
                            if s_conf < st_thr:
                                continue
                        else:
                            sst = st_table.get(sid)
                            if sst is None:
                                if len(st_table) >= st_max:
                                    del st_table[min(
                                        st_table,
                                        key=lambda s:
                                        st_table[s].lru_tick)]
                                st_table[sid] = _SiteState(
                                    last_line=line, lru_tick=st_tick)
                                continue
                            sst.lru_tick = st_tick
                            d = line - sst.last_line
                            sst.last_line = line
                            if d == 0 or d > st_maxs or d < -st_maxs:
                                sst.confidence = 0
                                sst.stride = 0
                                continue
                            if d == sst.stride:
                                conf = sst.confidence + 1
                            else:
                                sst.stride = d
                                conf = 1
                            sst.confidence = conf
                            if conf < st_thr:
                                continue
                        if line + d * st_deg < 0:
                            # some candidate underflows line 0: take the
                            # filtered slow path (cold in practice)
                            cands = [c for k in range(st_deg)
                                     if (c := line + d * (k + 1)) >= 0]
                            st_issued += len(cands)
                            for p in cands:
                                if p in s2[p & m2] or p in s1[p & m1]:
                                    continue
                                hw_fill(p)
                            continue
                        st_issued += st_deg
                        p = line
                        for _k in range(st_deg):
                            p += d
                            if p in s2[p & m2] or p in s1[p & m1]:
                                continue
                            # hw_fill, inlined at the hottest fill site
                            hwi += 1
                            pset3 = s3[p & m3]
                            pv = pset3.pop(p, _MISS)
                            if pv is not _MISS:
                                pset3[p] = pv
                                c3h += 1
                            else:
                                c3m += 1
                                pfr += 1
                                cur_pf += 1
                                c3f += 1
                                if len(pset3) >= a3:
                                    vd = pset3.pop(next(iter(pset3)))
                                    e3 += 1
                                    if vd:
                                        c3d += 1
                                        wbk += 1
                                        cur_wr += 1
                                else:
                                    occ3 += 1
                                pset3[p] = False
                            pset2 = s2[p & m2]
                            c2f += 1
                            if len(pset2) >= a2:
                                victim = next(iter(pset2))
                                pv = pset2.pop(victim)
                                e2 += 1
                                if pv:
                                    c2d += 1
                                    absorb_l3(victim)
                            else:
                                occ2 += 1
                            pset2[p] = False
                            prefetched.add(p)
                    if st is not None and ss is not None:
                        ss.last_line = s_last
                        ss.stride = s_str
                        ss.confidence = s_conf
                        ss.lru_tick = st_tick

                else:
                    # generic engine set: per-line observe calls
                    for line, sid in pairs:
                        set1 = s1[line & m1]
                        if line in set1:
                            set1[line] = set1.pop(line) or is_write
                            l1h += 1
                            for engine in hit_engines:
                                cands = engine.observe(line, False, sid)
                                if cands:
                                    hw_prefetch(cands)
                            continue
                        set2 = s2[line & m2]
                        if line in set2:
                            set2[line] = set2.pop(line)
                            l2h += 1
                            if line in prefetched:
                                prefetched.discard(line)
                                pfu += 1
                                for engine in engines:
                                    engine.stats.useful += 1
                        else:
                            set3 = s3[line & m3]
                            if line in set3:
                                set3[line] = set3.pop(line)
                                l3h += 1
                                if line in prefetched:
                                    prefetched.discard(line)
                                    pfu += 1
                            else:
                                drd += 1
                                cur_dr += 1
                                if remote:
                                    rem += 1
                                    cur_rm += 1
                                # fill L3 (absent)
                                if len(set3) >= a3:
                                    vd = set3.pop(next(iter(set3)))
                                    e3 += 1
                                    if vd:
                                        c3d += 1
                                        wbk += 1
                                        cur_wr += 1
                                else:
                                    occ3 += 1
                                set3[line] = False
                            # fill L2 (absent: the L2 miss branch)
                            if len(set2) >= a2:
                                victim = next(iter(set2))
                                vd = set2.pop(victim)
                                e2 += 1
                                if vd:
                                    c2d += 1
                                    absorb_l3(victim)
                            else:
                                occ2 += 1
                            set2[line] = False
                        # fill L1 (absent: the L1 miss branch)
                        if len(set1) >= a1:
                            victim = next(iter(set1))
                            vd = set1.pop(victim)
                            e1 += 1
                            if vd:
                                c1d += 1
                                absorb_l2(victim)
                        else:
                            occ1 += 1
                        set1[line] = is_write
                        if engines:
                            for engine in engines:
                                cands = engine.observe(line, True, sid)
                                if cands:
                                    hw_prefetch(cands)

            elif op == 3:  # software prefetch
                # inline of CorePort.software_prefetch (no TLB, no
                # access counting, trains nothing)
                swp += len(lines)
                for line in lines:
                    if line in s1[line & m1]:
                        continue
                    set2 = s2[line & m2]
                    if line not in set2:
                        set3 = s3[line & m3]
                        if line in set3:
                            set3[line] = set3.pop(line)
                            c3h += 1
                        else:
                            c3m += 1
                            pfr += 1
                            cur_pf += 1
                            c3f += 1
                            if len(set3) >= a3:
                                vd = set3.pop(next(iter(set3)))
                                e3 += 1
                                if vd:
                                    c3d += 1
                                    wbk += 1
                                    cur_wr += 1
                            else:
                                occ3 += 1
                            set3[line] = False
                        c2f += 1
                        if len(set2) >= a2:
                            victim = next(iter(set2))
                            vd = set2.pop(victim)
                            e2 += 1
                            if vd:
                                c2d += 1
                                absorb_l3(victim)
                        else:
                            occ2 += 1
                        set2[line] = False
                    # fill L1 clean (absent: resident lines continue'd)
                    set1 = s1[line & m1]
                    c1f += 1
                    if len(set1) >= a1:
                        victim = next(iter(set1))
                        vd = set1.pop(victim)
                        e1 += 1
                        if vd:
                            c1d += 1
                            absorb_l2(victim)
                    else:
                        occ1 += 1
                    set1[line] = False
                    prefetched.add(line)

            elif op == 4:  # flush
                fls += len(lines)
                for line in lines:
                    dirty = False
                    set1 = s1[line & m1]
                    if line in set1:
                        dirty = set1.pop(line)
                        c1i += 1
                        occ1 -= 1
                    set2 = s2[line & m2]
                    if line in set2:
                        dirty = set2.pop(line) or dirty
                        c2i += 1
                        occ2 -= 1
                    set3 = s3[line & m3]
                    if line in set3:
                        dirty = set3.pop(line) or dirty
                        c3i += 1
                        occ3 -= 1
                    if dirty:
                        wbk += 1
                        cur_wr += 1

            else:  # op == 2: non-temporal store
                pg = seg.first_page
                if pg != last_page:
                    walk = translate(pg)
                    if walk:
                        tlbm += 1
                        tlbw += walk
                for pg in seg.walk_pages:
                    walk = translate(pg)
                    if walk:
                        tlbm += 1
                        tlbw += walk
                last_page = seg.last_page
                n = len(lines)
                acc += n
                ntl += n
                cur_nt += n
                if remote:
                    rem += n
                    cur_rm += n
                for line in lines:
                    set1 = s1[line & m1]
                    if line in set1:
                        del set1[line]
                        c1i += 1
                        occ1 -= 1
                    set2 = s2[line & m2]
                    if line in set2:
                        del set2[line]
                        c2i += 1
                        occ2 -= 1
                    set3 = s3[line & m3]
                    if line in set3:
                        del set3[line]
                        c3i += 1
                        occ3 -= 1

            if multi and (cur_dr or cur_pf or cur_wr or cur_nt or cur_rm):
                rec = homes.get(home)
                if rec is None:
                    rec = homes[home] = [0, 0, 0, 0]
                rec[0] += cur_dr
                rec[1] += cur_pf
                rec[2] += cur_wr + cur_nt
                rec[3] += cur_rm

        # ---- bulk flush of all accumulated state ---------------------
        if not multi and (drd or pfr or wbk or ntl):
            homes[plan.home0] = [drd, pfr, wbk + ntl, rem]
        if st is not None:
            st._tick = st_tick
            if st_issued:
                st.stats.issued += st_issued
        if sm is not None:
            sm._tick = sm_tick
            if sm_issued:
                sm.stats.issued += sm_issued
        if nl is not None and nl_issued:
            nl.stats.issued += nl_issued
        port._last_page = last_page
        stats = BatchStats(
            accesses=acc, l1_hits=l1h, l2_hits=l2h, l3_hits=l3h,
            dram_reads=drd, writebacks=wbk, nt_lines=ntl,
            l1_evictions=e1, l2_evictions=e2, l3_evictions=e3,
            sw_prefetches=swp, hw_prefetch_issued=hwi,
            hw_prefetch_dram_reads=pfr, prefetch_useful=pfu,
            remote_dram_lines=rem, flushes=fls,
            tlb_misses=tlbm, tlb_walk_cycles=tlbw,
        )
        # demand-path CacheStats deltas are derived: every demand miss
        # at a level is a fill at that level, and evictions are counted
        # once (the BatchStats e* counters share the same increment
        # sites as the per-level eviction stats)
        dm1 = dacc - l1h
        dm2 = dm1 - l2h
        dm3 = dm2 - l3h
        cs = l1.stats
        cs.hits += l1h
        cs.misses += dm1
        cs.fills += dm1 + c1f
        cs.evictions += e1
        cs.dirty_evictions += c1d
        cs.invalidations += c1i
        cs = l2.stats
        cs.hits += l2h
        cs.misses += dm2
        cs.fills += dm2 + c2f
        cs.evictions += e2
        cs.dirty_evictions += c2d
        cs.invalidations += c2i
        cs = l3.stats
        cs.hits += l3h + c3h
        cs.misses += dm3 + c3m
        cs.fills += dm3 + c3f
        cs.evictions += e3
        cs.dirty_evictions += c3d
        cs.invalidations += c3i
        l1._resident += occ1
        l2._resident += occ2
        l3._resident += occ3
        drams = hier.dram
        for node, rec in homes.items():
            counters = drams[node].counters
            counters.cas_reads += rec[0] + rec[1]
            counters.cas_writes += rec[2]
        port.totals.merge(stats)
        if port.bus.enabled:
            port.emit_plan_batch(stats, homes)
        return stats
