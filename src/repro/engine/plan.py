"""Compile tier: flat loops lowered to reusable access plans.

An :class:`AccessPlan` is the fully evaluated memory side of one flat
(innermost) loop execution: the exact cache-line touch stream every
site emits, in canonical emission order, pre-concatenated into
:class:`PlanSegment` runs that the execute tier
(:mod:`repro.engine.datapath`) streams through the hierarchy without
re-deriving anything.

Plans are *captured from the interpreter's own emission generator*, so
by construction a plan contains the same lines, in the same order, that
the per-line reference engine would dispatch — the foundation of the
fast/reference equivalence guarantee (see ``docs/ENGINE.md``).

Plans are cached in two tiers (see :class:`PlanCache`):

* the **symbolic tier** is a process-global registry keyed on *loop
  structure alone* — the loop id plus, per site, the access kind,
  width, buffer name, and referenced induction variables.  Nothing
  size-dependent (trip counts, strides, bases) enters the key, so the
  dgemm kernel at n=64 and n=160 resolves to the *same*
  :class:`SymbolicPlan`: segments are parameterised over trip-count
  and base/stride symbols and only materialised at binding time.
* the **bound tier** is per core: a symbolic plan plus one concrete
  binding — ``(trips, site ids, per-site (base, stride, home))`` —
  memoises the materialised :class:`AccessPlan`, so re-executions of
  the same (program, buffer_map) pair (A/B measurement windows, reps,
  warm-protocol reruns) replay without re-lowering anything.

Loops the symbolic form cannot express — gathers (data-dependent
streams) and negative own-loop strides — fall back to the concrete
capture keying of earlier revisions: the loop object by ``id`` (strong
ref), outer induction-variable values, buffer bases/homes, and gather
index tables by ``id``.

``PlanCacheStats.hits``/``misses`` count symbolic-tier resolution: a
lookup misses only the first time a loop *structure* is seen in the
process, which is what makes the hit rate size-polymorphic (a sweep
over many problem sizes no longer pays one miss per size per address
context).  Materialisation work is tracked separately by
``built_segments``/``built_lines``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

#: flush the whole per-core plan cache once it holds this many line
#: entries (a coarse memory bound; sweeps over many distinct programs
#: on one long-lived machine otherwise grow without limit)
PLAN_CACHE_MAX_LINES = 8_000_000

#: segment opcodes (``PlanSegment.op``), dispatched on by the datapath
OP_DEMAND_READ = 0   # 'load' / 'gather'
OP_DEMAND_WRITE = 1  # 'store'
OP_NTSTORE = 2
OP_PREFETCH = 3
OP_FLUSH = 4

_KIND_TO_OP = {
    "load": OP_DEMAND_READ,
    "gather": OP_DEMAND_READ,
    "store": OP_DEMAND_WRITE,
    "ntstore": OP_NTSTORE,
    "prefetch": OP_PREFETCH,
    "flush": OP_FLUSH,
}


@dataclass
class PlanSegment:
    """A maximal run of consecutive emissions from one memory site.

    Beyond the captured emission (``kind``/``lines``/``home``/
    ``stream_id``), the compile tier precomputes everything about the
    segment the execute tier would otherwise re-derive per line:

    * ``op`` — integer opcode (see ``OP_*``) for branch dispatch,
    * ``rhome``/``remote`` — the NUMA home resolved against the owning
      core's node (plans are cached per core, so this is static),
    * ``first_page``/``walk_pages``/``last_page`` — the page-transition
      structure of the line stream.  Only the first line's page depends
      on runtime TLB cursor state; every *internal* transition is a
      guaranteed page change, so the per-line ``page != last_page``
      check collapses to one conditional plus a precomputed walk list.
    """

    kind: str        # 'load' | 'store' | 'ntstore' | 'gather' | 'prefetch' | 'flush'
    lines: List[int]
    home: int        # NUMA home node of the data
    stream_id: int   # site id, the stride prefetcher's PC analogue
    op: int = OP_DEMAND_READ
    rhome: int = 0
    remote: bool = False
    first_page: int = -1
    walk_pages: Tuple[int, ...] = ()
    last_page: int = -1
    #: merged-run form only (see ``AccessPlan.runs``): when a run fuses
    #: segments from several sites, ``sids[i]`` is the stream id of
    #: ``lines[i]``; ``None`` means the whole run shares ``stream_id``
    sids: Optional[List[int]] = None


@dataclass
class PackedPlan:
    """Array form of a plan's runs, consumed by the compiled datapath.

    Layout shared with ``engine/_ckernel.c`` (keep the six meta columns
    in sync with the ``RM_*`` enum there and in ``engine/ckernel.py``):

    * ``meta`` — one int64 row per run:
      ``[op, rhome, remote, line_offset, nlines, sid_mode]`` where
      ``sid_mode >= 0`` is the uniform stream id of the whole run and
      ``-1`` means per-line ids are in ``sids``.
    * ``lines`` — all runs' line numbers, flat, indexed by
      ``line_offset``/``nlines``.
    * ``sids`` — per-line stream ids aligned with ``lines`` (only read
      for demand runs with ``sid_mode == -1``).

    No page-transition lists: the kernel performs the per-line
    ``page != last_page`` check itself, so the packed form is fully
    position-independent and cheap to materialise from the vectorized
    affine lowering without any ``.tolist()`` round trip.
    """

    meta: np.ndarray
    lines: np.ndarray
    sids: np.ndarray
    #: cached raw data pointers (``ndarray.ctypes`` allocates a wrapper
    #: per access; cached plans replay thousands of times)
    _ptrs: Optional[Tuple[int, int, int]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def nruns(self) -> int:
        return self.meta.shape[0]

    @property
    def ptrs(self) -> Tuple[int, int, int]:
        """(meta, lines, sids) raw data pointers for the C kernel."""
        if self._ptrs is None:
            self._ptrs = (self.meta.ctypes.data, self.lines.ctypes.data,
                          self.sids.ctypes.data)
        return self._ptrs


@dataclass
class AccessPlan:
    """The lowered memory traffic of one flat-loop execution context."""

    segments: List[PlanSegment]
    total_lines: int = 0
    #: every segment resolves to one home node (the overwhelmingly
    #: common case): the datapath then skips per-segment DRAM-home
    #: accounting and attributes plan totals in one step
    single_home: bool = True
    home0: int = 0
    remote0: bool = False
    #: execution form: consecutive ``segments`` with the same opcode and
    #: resolved home fused into flat runs.  Interleaved multi-site
    #: bodies (a dgemm inner loop alternating two load sites) otherwise
    #: average ~1 line per segment, so the datapath's per-segment
    #: preamble would be paid per *line*; fused runs restore long
    #: streams, carrying per-line stream ids in ``sids`` when sites mix
    runs: List[PlanSegment] = field(default_factory=list)
    #: array execution form for the compiled kernel (built directly by
    #: the affine lowering under ``packed=True``, or lazily from
    #: ``runs`` via :meth:`ensure_packed` for captured plans)
    packed: Optional[PackedPlan] = None

    @property
    def run_count(self) -> int:
        """Number of lowered execution units (for build telemetry)."""
        n = len(self.segments) or len(self.runs)
        if not n and self.packed is not None:
            n = self.packed.nruns
        return n

    def ensure_packed(self) -> PackedPlan:
        """The packed array form, built from ``runs`` on first use."""
        if self.packed is not None:
            return self.packed
        runs = self.runs
        meta = np.zeros((len(runs), 6), dtype=np.int64)
        total = sum(len(seg.lines) for seg in runs)
        lines = np.empty(total, dtype=np.int64)
        sids = np.zeros(total, dtype=np.int64)
        off = 0
        for k, seg in enumerate(runs):
            n = len(seg.lines)
            lines[off:off + n] = seg.lines
            if seg.sids is not None:
                sids[off:off + n] = seg.sids
                sid_mode = -1
            else:
                sid_mode = seg.stream_id
            row = meta[k]
            row[0] = seg.op
            row[1] = seg.rhome
            row[2] = 1 if seg.remote else 0
            row[3] = off
            row[4] = n
            row[5] = sid_mode
            off += n
        self.packed = PackedPlan(meta=meta, lines=lines, sids=sids)
        return self.packed

    @classmethod
    def from_emissions(cls, emissions: Iterable, page_shift: int,
                       own_node: int) -> "AccessPlan":
        """Capture ``(site, lines, node)`` emissions into segments.

        Consecutive emissions from the same site are concatenated (the
        interleaved walker emits one short burst per crossing
        iteration); emissions from different sites are kept as separate
        segments so per-line execution order is preserved exactly.
        After capture the execute metadata is precomputed once — same-op
        segments fused into runs, homes resolved, page-transition
        structure extracted — this is the "lowering" the plan cache
        amortises across reps, A/B windows, and protocol reruns.
        """
        segments: List[PlanSegment] = []
        total = 0
        last_site_id = None
        current: List[int] = []
        for site, lines, node in emissions:
            total += len(lines)
            if site.site_id == last_site_id:
                current.extend(lines)
                continue
            current = list(lines)
            segments.append(
                PlanSegment(site.kind, current, node, site.site_id)
            )
            last_site_id = site.site_id

        homes = set()
        for seg in segments:
            op = _KIND_TO_OP[seg.kind]
            seg.op = op
            rhome = seg.home if seg.home is not None else own_node
            seg.rhome = rhome
            seg.remote = rhome != own_node
            homes.add(rhome)

        # fuse consecutive same-(op, home) segments into execution runs;
        # per-line order is the concatenation order, so the line stream
        # the datapath replays is unchanged — only the loop bookkeeping
        # moves from per-segment to per-run
        runs: List[PlanSegment] = []
        owned = False  # runs[-1] is a private copy (safe to extend)
        for seg in segments:
            prev = runs[-1] if runs else None
            if prev is not None and seg.op == prev.op \
                    and seg.rhome == prev.rhome:
                if not owned:
                    prev = PlanSegment(
                        prev.kind, list(prev.lines), prev.home,
                        prev.stream_id, op=prev.op, rhome=prev.rhome,
                        remote=prev.remote,
                    )
                    runs[-1] = prev
                    owned = True
                if seg.op <= OP_DEMAND_WRITE:
                    # only demand traffic trains the stride prefetcher,
                    # so only demand runs need per-line stream ids
                    if prev.sids is not None:
                        prev.sids.extend(
                            [seg.stream_id] * len(seg.lines))
                    elif seg.stream_id != prev.stream_id:
                        prev.sids = [prev.stream_id] * len(prev.lines)
                        prev.sids.extend(
                            [seg.stream_id] * len(seg.lines))
                prev.lines.extend(seg.lines)
                continue
            runs.append(seg)
            owned = False
        for run in runs:
            if run.op <= OP_NTSTORE and run.lines:
                _precompute_pages(run, page_shift)

        plan = cls(segments=segments, total_lines=total, runs=runs)
        if len(homes) <= 1:
            plan.home0 = homes.pop() if homes else own_node
            plan.remote0 = plan.home0 != own_node
        else:
            plan.single_home = False
        return plan

    @classmethod
    def from_affine_sites(cls, sites, trips: int, line_shift: int,
                          page_shift: int, own_node: int,
                          packed: bool = False) -> "AccessPlan":
        """Vectorized lowering of an affine flat loop (1..n sites).

        ``sites`` is a list of ``(kind, site_id, base, stride,
        width_bytes, node)`` records in body order with non-negative
        strides.  Produces exactly the runs :meth:`from_emissions`
        builds from the interpreter's emission walk — per-site
        monotone-frontier crossings, the iteration-order merge, and the
        range expansion are computed in numpy instead of per-burst
        Python (the walker averages ~1 line per burst on interleaved
        bodies, so per-burst work dominates compile time otherwise).

        With ``packed=True`` the plan carries only the
        :class:`PackedPlan` array form — the run metadata and flat line
        stream stay numpy end to end (no ``.tolist()``), which is the
        materialisation the compiled datapath kernel consumes.  The
        returned plan carries ``segments=()`` either way: callers use
        this form only when the inlined or compiled datapath is active,
        which never takes the segment-granular fallback.
        """
        nsites = len(sites)
        trange = np.arange(trips, dtype=np.int64)
        t_keys = []
        lo_parts = []
        hi_parts = []
        idx_parts = []
        for i, (kind, sid, base, stride, width, node) in enumerate(sites):
            pos = base + trange * stride
            end = (pos + (width - 1)) >> line_shift
            # crossing trips: first trip reaching each new window end
            # (ends are monotone for stride >= 0, so these are exactly
            # the walker's frontier-advancing visits)
            mask = np.empty(trips, dtype=bool)
            mask[0] = True
            np.greater(end[1:], end[:-1], out=mask[1:])
            crossings = np.flatnonzero(mask)
            hi = end[crossings]
            start = pos[crossings] >> line_shift
            lo = np.empty_like(hi)
            lo[0] = start[0]
            np.maximum(start[1:], hi[:-1] + 1, out=lo[1:])
            t_keys.append(crossings * nsites + i)
            lo_parts.append(lo)
            hi_parts.append(hi)
            idx_parts.append(np.full(crossings.size, i, dtype=np.int64))

        # merge bursts into iteration order (site order within a trip)
        order = np.argsort(np.concatenate(t_keys))
        lo_b = np.concatenate(lo_parts)[order]
        hi_b = np.concatenate(hi_parts)[order]
        si_b = np.concatenate(idx_parts)[order]
        ops = np.array([_KIND_TO_OP[s[0]] for s in sites], dtype=np.int64)
        rhomes = np.array(
            [own_node if s[5] is None else s[5] for s in sites],
            dtype=np.int64,
        )
        sid_by_site = np.array([s[1] for s in sites], dtype=np.int64)
        op_b = ops[si_b]
        rh_b = rhomes[si_b]

        # expand [lo..hi] burst windows into the flat line stream
        counts = hi_b - lo_b + 1
        cum = np.cumsum(counts)
        total = int(cum[-1])
        offs = np.arange(total, dtype=np.int64) \
            - np.repeat(cum - counts, counts)
        lines_flat = np.repeat(lo_b, counts) + offs
        sid_flat = np.repeat(sid_by_site[si_b], counts)
        line_cum = np.concatenate(([0], cum))

        # split at burst boundaries where the opcode or home changes
        brk = np.flatnonzero(
            (op_b[1:] != op_b[:-1]) | (rh_b[1:] != rh_b[:-1])) + 1
        bounds = np.concatenate(([0], brk, [counts.size]))

        if packed:
            b0s = bounds[:-1]
            offs = line_cum[b0s]
            meta = np.empty((b0s.size, 6), dtype=np.int64)
            meta[:, 0] = op_b[b0s]
            meta[:, 1] = rh_b[b0s]
            meta[:, 2] = meta[:, 1] != own_node
            meta[:, 3] = offs
            meta[:, 4] = line_cum[bounds[1:]] - offs
            smin = np.minimum.reduceat(sid_flat, offs)
            smax = np.maximum.reduceat(sid_flat, offs)
            meta[:, 5] = np.where(smin == smax, smin, -1)
            plan = cls(
                segments=[], total_lines=total,
                packed=PackedPlan(meta=meta, lines=lines_flat,
                                  sids=sid_flat),
            )
            uh = np.unique(rh_b)
            if uh.size <= 1:
                plan.home0 = int(uh[0]) if uh.size else own_node
                plan.remote0 = plan.home0 != own_node
            else:
                plan.single_home = False
            return plan

        runs: List[PlanSegment] = []
        homes = set()
        for k in range(bounds.size - 1):
            b0 = int(bounds[k])
            b1 = int(bounds[k + 1])
            l0 = int(line_cum[b0])
            l1 = int(line_cum[b1])
            chunk = lines_flat[l0:l1]
            op = int(op_b[b0])
            rhome = int(rh_b[b0])
            homes.add(rhome)
            schunk = sid_flat[l0:l1]
            seg = PlanSegment(
                sites[int(si_b[b0])][0], chunk.tolist(), rhome,
                int(schunk[0]), op=op, rhome=rhome,
                remote=rhome != own_node,
            )
            if op <= OP_DEMAND_WRITE \
                    and int(schunk.min()) != int(schunk.max()):
                seg.sids = schunk.tolist()
            if op <= OP_NTSTORE:
                pages = chunk >> page_shift
                seg.first_page = int(pages[0])
                seg.last_page = int(pages[-1])
                idx = np.flatnonzero(pages[1:] != pages[:-1])
                seg.walk_pages = tuple(int(p) for p in pages[idx + 1])
            runs.append(seg)

        plan = cls(segments=[], total_lines=total, runs=runs)
        if len(homes) <= 1:
            plan.home0 = homes.pop() if homes else own_node
            plan.remote0 = plan.home0 != own_node
        else:
            plan.single_home = False
        return plan


def _precompute_pages(seg: PlanSegment, page_shift: int) -> None:
    """Fill a demand/NT segment's page-transition fields."""
    lines = seg.lines
    if len(lines) > 64:
        pages = np.asarray(lines, dtype=np.int64) >> page_shift
        seg.first_page = int(pages[0])
        seg.last_page = int(pages[-1])
        idx = np.flatnonzero(pages[1:] != pages[:-1])
        seg.walk_pages = tuple(int(p) for p in pages[idx + 1])
        return
    first = last = lines[0] >> page_shift
    walks: List[int] = []
    for line in lines[1:]:
        page = line >> page_shift
        if page != last:
            walks.append(page)
            last = page
    seg.first_page = first
    seg.last_page = last
    seg.walk_pages = tuple(walks)


class SymbolicPlan:
    """One interned loop structure: the size-polymorphic plan.

    A symbolic plan is the compile artifact keyed on loop/kernel
    identity alone.  Its segments exist only as *symbols* — per-site
    access kind and width with free trip-count, base, stride, and home
    parameters — and :meth:`bind` materialises a concrete
    :class:`AccessPlan` for one assignment of those symbols via the
    vectorized affine lowering.  Interning is structural, so every
    program the same kernel generator emits (any problem size, any
    buffer placement) resolves to the same object.
    """

    __slots__ = ("plan_id", "skey")

    def __init__(self, plan_id: int, skey: tuple) -> None:
        self.plan_id = plan_id
        self.skey = skey

    def bind(self, sites, trips: int, line_shift: int, page_shift: int,
             own_node: int, packed: bool = False) -> AccessPlan:
        """Materialise under one concrete symbol assignment.

        ``sites`` supplies the bound symbols in body order —
        ``(kind, site_id, base, stride, width_bytes, node)`` — and
        ``trips`` the bound trip count.
        """
        return AccessPlan.from_affine_sites(
            sites, trips, line_shift, page_shift, own_node, packed=packed
        )

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"SymbolicPlan(id={self.plan_id}, loop={self.skey[0]!r})"


class SymbolicRegistry:
    """Process-global interning table for :class:`SymbolicPlan`.

    Structural keys contain nothing machine- or placement-dependent, so
    one registry serves every core of every machine in the process; the
    per-core :class:`PlanCache` keeps only bound materialisations.
    """

    def __init__(self) -> None:
        self._plans: Dict[tuple, SymbolicPlan] = {}

    def intern(self, skey: tuple) -> Tuple[SymbolicPlan, bool]:
        """(plan, freshly created?) for a structural key."""
        plan = self._plans.get(skey)
        if plan is not None:
            return plan, False
        plan = SymbolicPlan(len(self._plans), skey)
        self._plans[skey] = plan
        return plan, True

    def __len__(self) -> int:
        return len(self._plans)


#: the process-wide symbolic tier (see :class:`SymbolicRegistry`)
SYMBOLIC_REGISTRY = SymbolicRegistry()


@dataclass
class PlanCacheStats:
    """Compile-tier telemetry (hit rate drives the amortization story).

    ``hits``/``misses`` count symbolic-tier resolution per plan lookup:
    a miss means the loop's *structure* had never been seen by the
    process (a genuinely new kernel shape); everything else — any
    problem size, any buffer placement, any rep of a known shape — is
    a hit.  Binding-level materialisation work is what
    ``built_segments``/``built_lines`` track, and ``flushes`` counts
    whole-cache evictions of the bound tier at the line cap.  Concrete
    fallback lookups (gathers, negative strides, segment-fallback
    machines) land in the same counters with their capture-key
    semantics.
    """

    hits: int = 0
    misses: int = 0
    built_segments: int = 0
    built_lines: int = 0
    flushes: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "built_segments": self.built_segments,
            "built_lines": self.built_lines,
            "flushes": self.flushes,
        }


class PlanCache:
    """Per-core plan store: bound symbolic plans plus concrete captures.

    The bound tier memoises :meth:`SymbolicPlan.bind` materialisations
    under ``(plan_id, trips, site ids, per-site (base, stride, home))``
    keys; the concrete tier keeps capture-keyed plans for loops the
    symbolic form cannot express (entries hold strong references to the
    loop object and any gather tables so the ``id()`` key components
    stay valid).  Both tiers share the line-count memory cap and are
    flushed together.
    """

    def __init__(self, max_lines: int = PLAN_CACHE_MAX_LINES) -> None:
        self.stats = PlanCacheStats()
        self.max_lines = max_lines
        self._entries: Dict[tuple, Tuple[object, tuple, AccessPlan]] = {}
        self._bound: Dict[tuple, AccessPlan] = {}
        self._cached_lines = 0

    # -- symbolic tier -------------------------------------------------
    def resolve_symbolic(self, skey: tuple) -> SymbolicPlan:
        """Intern a loop structure, counting the lookup (see stats)."""
        plan, fresh = SYMBOLIC_REGISTRY.intern(skey)
        if fresh:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return plan

    def note_symbolic_hit(self) -> None:
        """Count a lookup whose structure was already resolved locally."""
        self.stats.hits += 1

    # -- bound tier ----------------------------------------------------
    def get_bound(self, bkey: tuple) -> Optional[AccessPlan]:
        return self._bound.get(bkey)

    def put_bound(self, bkey: tuple, plan: AccessPlan) -> None:
        if self._cached_lines + plan.total_lines > self.max_lines:
            self._flush()
        self._bound[bkey] = plan
        self._cached_lines += plan.total_lines
        self.stats.built_segments += plan.run_count
        self.stats.built_lines += plan.total_lines

    # -- concrete fallback tier ----------------------------------------
    def get(self, key: tuple):
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return entry[2]

    def put(self, key: tuple, loop, pinned: tuple, plan: AccessPlan) -> None:
        if self._cached_lines + plan.total_lines > self.max_lines:
            self._flush()
        self._entries[key] = (loop, pinned, plan)
        self._cached_lines += plan.total_lines
        self.stats.built_segments += plan.run_count
        self.stats.built_lines += plan.total_lines

    def _flush(self) -> None:
        self._entries.clear()
        self._bound.clear()
        self._cached_lines = 0
        self.stats.flushes += 1

    def __len__(self) -> int:
        return len(self._entries) + len(self._bound)
