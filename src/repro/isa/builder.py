"""Runtime program builder — the simulator's analogue of Xbyak.

The ISPASS'14 methodology generates its microbenchmark code at runtime so
that measurements are compiler-agnostic and dead code cannot be removed.
:class:`ProgramBuilder` plays that role here: kernels and benchmarks
assemble :class:`~repro.isa.program.Program` trees through a small fluent
API with readable affine addressing::

    b = ProgramBuilder()
    x = b.buffer("x", n * 8)
    y = b.buffer("y", n * 8)
    alpha = b.reg()
    with b.loop(n // 4) as i:
        vx = b.load(x[i * 32], width=256)
        vy = b.load(y[i * 32], width=256)
        acc = b.fma(alpha, vx, vy, width=256)
        b.store(acc, y[i * 32], width=256)
    program = b.build()
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from ..errors import IsaError
from .instructions import (
    AddrExpr,
    Flush,
    GatherLoad,
    Load,
    Loop,
    PrefetchHint,
    Store,
    VecOp,
)
from .program import Program
from .registers import Register, RegisterAllocator


@dataclass(frozen=True)
class _Term:
    """``loop_var * coeff`` inside an affine address expression."""

    loop_id: str
    coeff: int


class AffineExpr:
    """Sum of loop-variable terms plus a constant byte offset."""

    def __init__(self, offset: int = 0, terms: Tuple[_Term, ...] = ()) -> None:
        self.offset = offset
        self.terms = terms

    def __add__(self, other: Union["AffineExpr", "LoopVar", int]) -> "AffineExpr":
        other = _as_affine(other)
        merged: Dict[str, int] = {}
        for term in self.terms + other.terms:
            merged[term.loop_id] = merged.get(term.loop_id, 0) + term.coeff
        terms = tuple(_Term(lid, c) for lid, c in merged.items() if c != 0)
        return AffineExpr(self.offset + other.offset, terms)

    __radd__ = __add__

    def to_strides(self) -> Tuple[Tuple[str, int], ...]:
        return tuple((t.loop_id, t.coeff) for t in self.terms)


class LoopVar:
    """Induction variable handle returned by :meth:`ProgramBuilder.loop`."""

    def __init__(self, loop_id: str) -> None:
        self.loop_id = loop_id

    def __mul__(self, coeff: int) -> AffineExpr:
        if not isinstance(coeff, int):
            raise IsaError("loop variables scale by integer byte strides only")
        return AffineExpr(0, (_Term(self.loop_id, coeff),))

    __rmul__ = __mul__

    def __add__(self, other) -> AffineExpr:
        return (self * 1) + other

    __radd__ = __add__

    def __repr__(self) -> str:
        return f"LoopVar({self.loop_id!r})"


def _as_affine(value) -> AffineExpr:
    if isinstance(value, AffineExpr):
        return value
    if isinstance(value, LoopVar):
        return value * 1
    if isinstance(value, int):
        if value < 0:
            raise IsaError("address offsets must be non-negative")
        return AffineExpr(value)
    raise IsaError(f"cannot use {value!r} in an address expression")


class BufferHandle:
    """Named buffer; indexing yields an :class:`AddrExpr`."""

    def __init__(self, name: str, size: int) -> None:
        self.name = name
        self.size = size

    def __getitem__(self, expr) -> AddrExpr:
        affine = _as_affine(expr)
        return AddrExpr(self.name, affine.offset, affine.to_strides())

    @property
    def base(self) -> AddrExpr:
        return AddrExpr(self.name, 0, ())

    def __repr__(self) -> str:
        return f"BufferHandle({self.name!r}, {self.size})"


class TableHandle:
    """Named gather index table; indexing yields an element-indexed
    :class:`AddrExpr` (strides count table entries, not bytes)."""

    def __init__(self, name: str, length: int) -> None:
        self.name = name
        self.length = length

    def __getitem__(self, expr) -> AddrExpr:
        affine = _as_affine(expr)
        return AddrExpr(self.name, affine.offset, affine.to_strides())

    def __repr__(self) -> str:
        return f"TableHandle({self.name!r}, {self.length})"


class ProgramBuilder:
    """Assembles programs; see module docstring for the idiom."""

    def __init__(self) -> None:
        self._buffers: Dict[str, int] = {}
        self._tables: Dict[str, object] = {}
        self._body_stack: List[List[object]] = [[]]
        self._regs = RegisterAllocator()
        self._loop_counter = 0
        self._built = False

    # ------------------------------------------------------------------
    # declarations
    # ------------------------------------------------------------------
    def buffer(self, name: str, size_bytes: int) -> BufferHandle:
        """Declare a data buffer of ``size_bytes``."""
        if name in self._buffers:
            raise IsaError(f"buffer {name!r} declared twice")
        if size_bytes <= 0:
            raise IsaError(f"buffer {name!r} needs positive size")
        self._buffers[name] = size_bytes
        return BufferHandle(name, size_bytes)

    def index_table(self, name: str, byte_offsets) -> TableHandle:
        """Register a gather index table (byte offsets, int sequence)."""
        if name in self._tables or name in self._buffers:
            raise IsaError(f"table/buffer name {name!r} already used")
        offsets = list(byte_offsets)
        if not offsets:
            raise IsaError(f"index table {name!r} must be non-empty")
        if min(offsets) < 0:
            raise IsaError(f"index table {name!r} has negative offsets")
        self._tables[name] = offsets
        return TableHandle(name, len(offsets))

    def reg(self) -> Register:
        """Allocate a fresh vector register (uninitialised constant)."""
        return self._regs.fresh()

    def regs(self, count: int) -> List[Register]:
        """Allocate ``count`` fresh vector registers."""
        return self._regs.reserve(count)

    # ------------------------------------------------------------------
    # control flow
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def loop(self, trips: int, loop_id: Optional[str] = None):
        """Open a counted loop; yields its induction variable."""
        if loop_id is None:
            loop_id = f"i{self._loop_counter}"
            self._loop_counter += 1
        self._body_stack.append([])
        try:
            yield LoopVar(loop_id)
        finally:
            body = self._body_stack.pop()
            self._emit(Loop(loop_id, trips, tuple(body)))

    # ------------------------------------------------------------------
    # memory
    # ------------------------------------------------------------------
    def load(self, addr: AddrExpr, width: int = 256, dst: Optional[Register] = None) -> Register:
        dst = dst or self.reg()
        self._emit(Load(dst, addr, width))
        return dst

    def store(self, src: Register, addr: AddrExpr, width: int = 256, nt: bool = False) -> None:
        self._emit(Store(src, addr, width, nt=nt))

    def gather(self, buffer: BufferHandle, index: AddrExpr,
               width: int = 64, dst: Optional[Register] = None) -> Register:
        """Indexed load: fetch ``buffer[table[index]]`` (see GatherLoad)."""
        dst = dst or self.reg()
        self._emit(GatherLoad(dst, buffer.name, index, width))
        return dst

    def prefetch(self, addr: AddrExpr) -> None:
        self._emit(PrefetchHint(addr))

    def flush(self, addr: AddrExpr) -> None:
        self._emit(Flush(addr))

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def _binop(self, op: str, a: Register, b: Register, width: int,
               precision: str, dst: Optional[Register]) -> Register:
        dst = dst or self.reg()
        self._emit(VecOp(op, width, dst, (a, b), precision))
        return dst

    def add(self, a, b, width=256, precision="f64", dst=None) -> Register:
        return self._binop("add", a, b, width, precision, dst)

    def sub(self, a, b, width=256, precision="f64", dst=None) -> Register:
        return self._binop("sub", a, b, width, precision, dst)

    def mul(self, a, b, width=256, precision="f64", dst=None) -> Register:
        return self._binop("mul", a, b, width, precision, dst)

    def div(self, a, b, width=256, precision="f64", dst=None) -> Register:
        return self._binop("div", a, b, width, precision, dst)

    def max_(self, a, b, width=256, precision="f64", dst=None) -> Register:
        return self._binop("max", a, b, width, precision, dst)

    def min_(self, a, b, width=256, precision="f64", dst=None) -> Register:
        return self._binop("min", a, b, width, precision, dst)

    def fma(self, a: Register, b: Register, acc: Register,
            width: int = 256, precision: str = "f64",
            dst: Optional[Register] = None) -> Register:
        """``dst = a * b + acc``; by default ``dst is acc`` so repeated
        calls build the carried accumulation chain real FMA loops have."""
        dst = dst or acc
        self._emit(VecOp("fma", width, dst, (a, b, acc), precision))
        return dst

    # ------------------------------------------------------------------
    # finalisation
    # ------------------------------------------------------------------
    def _emit(self, node) -> None:
        if self._built:
            raise IsaError("builder already finalised")
        self._body_stack[-1].append(node)

    def build(self, check_bounds: bool = True) -> Program:
        """Finalise and validate the program."""
        if len(self._body_stack) != 1:
            raise IsaError("unclosed loop at build time")
        self._built = True
        program = Program(self._body_stack[0], self._buffers, self._tables)
        if check_bounds:
            program.check_bounds()
        return program
