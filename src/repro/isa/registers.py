"""Register model for the simulated vector ISA.

The simulator is structural rather than value-accurate: registers are
identities used for dependency analysis (which instruction feeds which),
not containers of numeric data.  A vector register can be used at any
width up to the machine's maximum; the *instruction* carries the width,
matching how AVX encodes xmm/ymm views of the same physical register.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import IsaError

GPR_COUNT = 16
VEC_COUNT = 32

KIND_GPR = "gpr"
KIND_VEC = "vec"


@dataclass(frozen=True)
class Register:
    """A named architectural register.

    Attributes:
        name:  Assembly name, e.g. ``"v3"`` or ``"r11"``.
        index: Register number within its file.
        kind:  ``"gpr"`` for scalar/address registers, ``"vec"`` for
               SIMD registers.
    """

    name: str
    index: int
    kind: str

    def __str__(self) -> str:
        return self.name

    @property
    def is_vector(self) -> bool:
        return self.kind == KIND_VEC


def gpr(index: int) -> Register:
    """Return general-purpose register ``r<index>``."""
    if not 0 <= index < GPR_COUNT:
        raise IsaError(f"GPR index {index} out of range [0, {GPR_COUNT})")
    return Register(f"r{index}", index, KIND_GPR)


def vec(index: int) -> Register:
    """Return vector register ``v<index>``."""
    if not 0 <= index < VEC_COUNT:
        raise IsaError(f"vector register index {index} out of range [0, {VEC_COUNT})")
    return Register(f"v{index}", index, KIND_VEC)


def parse_register(name: str) -> Register:
    """Parse an assembly register name such as ``"v7"`` or ``"r2"``."""
    name = name.strip()
    if len(name) < 2 or name[0] not in ("v", "r"):
        raise IsaError(f"unrecognised register name {name!r}")
    try:
        index = int(name[1:])
    except ValueError as exc:
        raise IsaError(f"unrecognised register name {name!r}") from exc
    return vec(index) if name[0] == "v" else gpr(index)


class RegisterAllocator:
    """Hands out fresh vector registers, wrapping when exhausted.

    Wrapping is acceptable because the simulator only uses register
    identity for intra-loop-body dependence analysis; kernels that need
    precise long-range chains allocate registers explicitly.
    """

    def __init__(self) -> None:
        self._next = 0

    def fresh(self) -> Register:
        """Allocate the next vector register (round-robin)."""
        reg = vec(self._next % VEC_COUNT)
        self._next += 1
        return reg

    def reserve(self, count: int) -> list:
        """Allocate ``count`` distinct registers at once."""
        if count > VEC_COUNT:
            raise IsaError(f"cannot reserve {count} > {VEC_COUNT} vector registers")
        return [self.fresh() for _ in range(count)]
