"""Simulated vector ISA: registers, instructions, program IR, builder,
and a textual assembler.

This subpackage is the substrate the paper's runtime code generation
(Xbyak-style) maps onto: microbenchmarks and kernels are real programs in
this ISA, executed by :mod:`repro.cpu`.
"""

from .assembler import format_program, parse_addr, parse_program
from .builder import AffineExpr, BufferHandle, LoopVar, ProgramBuilder
from .instructions import (
    AddrExpr,
    Flush,
    Load,
    Loop,
    PrefetchHint,
    Store,
    VecOp,
    flops_of,
    lanes,
)
from .program import Program, StaticCounts
from .registers import Register, RegisterAllocator, gpr, parse_register, vec

__all__ = [
    "AddrExpr",
    "AffineExpr",
    "BufferHandle",
    "Flush",
    "Load",
    "Loop",
    "LoopVar",
    "PrefetchHint",
    "Program",
    "ProgramBuilder",
    "Register",
    "RegisterAllocator",
    "StaticCounts",
    "Store",
    "VecOp",
    "flops_of",
    "format_program",
    "gpr",
    "lanes",
    "parse_addr",
    "parse_program",
    "parse_register",
    "vec",
]
