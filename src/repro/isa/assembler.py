"""Textual assembly for the simulated ISA.

The format round-trips through :func:`format_program` / :func:`parse_program`
and exists for three reasons: debuggability (dump what a kernel builder
generated), golden tests, and letting examples ship literal listings that
mirror the runtime-generated assembly the paper shows.

Example listing::

    buffer x 32768
    buffer y 32768
    loop i 1024
      vload.256 v0, x[i*32]
      vload.256 v1, y[i*32]
      vfma.f64.256 v1, v2, v0, v1
      vstore.256 v1, y[i*32]
    end
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from ..errors import AssemblerError
from .instructions import (
    AddrExpr,
    Flush,
    GatherLoad,
    Load,
    Loop,
    PrefetchHint,
    Store,
    VecOp,
)
from .program import Program
from .registers import parse_register

_INDENT = "  "

_ADDR_RE = re.compile(r"^(\w+)\[(.*)\]$")
_TERM_RE = re.compile(r"^(\w+)\*(-?\d+)$")
_VECOP_RE = re.compile(r"^v(add|sub|mul|div|fma|max|min)\.(f32|f64)\.(\d+)$")
_MEM_RE = re.compile(r"^(vload|vstore|vstorent)\.(\d+)$")


# ----------------------------------------------------------------------
# formatting
# ----------------------------------------------------------------------
def format_program(program: Program) -> str:
    """Render a program to its canonical textual form.

    Gather index tables carry data, not structure, so programs with
    :class:`GatherLoad` instructions are not textually representable.
    """
    if any(isinstance(node, GatherLoad) for node in program.walk()):
        raise AssemblerError(
            "programs with gather loads are not representable in text "
            "(index tables are data)"
        )
    lines: List[str] = []
    for name in sorted(program.buffers):
        lines.append(f"buffer {name} {program.buffers[name]}")
    _format_nodes(program.body, 0, lines)
    return "\n".join(lines) + "\n"


def _format_nodes(nodes, depth: int, lines: List[str]) -> None:
    pad = _INDENT * depth
    for node in nodes:
        if isinstance(node, Loop):
            lines.append(f"{pad}loop {node.loop_id} {node.trips}")
            _format_nodes(node.body, depth + 1, lines)
            lines.append(f"{pad}end")
        else:
            lines.append(f"{pad}{node}")


# ----------------------------------------------------------------------
# parsing
# ----------------------------------------------------------------------
def parse_program(text: str) -> Program:
    """Parse the canonical textual form back into a :class:`Program`."""
    buffers: Dict[str, int] = {}
    root: List[object] = []
    stack: List[Tuple[str, int, List[object]]] = []
    current = root

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        try:
            if line.startswith("buffer "):
                _parse_buffer(line, buffers)
            elif line.startswith("loop "):
                parts = line.split()
                if len(parts) != 3:
                    raise AssemblerError("loop expects 'loop <id> <trips>'")
                stack.append((parts[1], int(parts[2]), current))
                current = []
            elif line == "end":
                if not stack:
                    raise AssemblerError("'end' without open loop")
                loop_id, trips, parent = stack.pop()
                parent.append(Loop(loop_id, trips, tuple(current)))
                current = parent
            else:
                current.append(_parse_instruction(line))
        except AssemblerError as exc:
            raise AssemblerError(f"line {lineno}: {exc}") from exc
        except Exception as exc:  # noqa: BLE001 - rewrap with location
            raise AssemblerError(f"line {lineno}: {exc}") from exc

    if stack:
        raise AssemblerError(f"unterminated loop {stack[-1][0]!r}")
    return Program(root, buffers)


def _parse_buffer(line: str, buffers: Dict[str, int]) -> None:
    parts = line.split()
    if len(parts) != 3:
        raise AssemblerError("buffer expects 'buffer <name> <bytes>'")
    name, size = parts[1], int(parts[2])
    if name in buffers:
        raise AssemblerError(f"buffer {name!r} declared twice")
    buffers[name] = size


def parse_addr(text: str) -> AddrExpr:
    """Parse ``buf[i*32+j*8+16]`` style address expressions."""
    match = _ADDR_RE.match(text.strip())
    if not match:
        raise AssemblerError(f"bad address {text!r}")
    buffer, inner = match.group(1), match.group(2).strip()
    offset = 0
    strides: List[Tuple[str, int]] = []
    if inner:
        for part in inner.split("+"):
            part = part.strip()
            term = _TERM_RE.match(part)
            if term:
                strides.append((term.group(1), int(term.group(2))))
            else:
                try:
                    offset += int(part)
                except ValueError as exc:
                    raise AssemblerError(f"bad address term {part!r}") from exc
    return AddrExpr(buffer, offset, tuple(strides))


def _parse_instruction(line: str):
    mnemonic, _, rest = line.partition(" ")
    operands = [op.strip() for op in rest.split(",")] if rest.strip() else []

    vecop = _VECOP_RE.match(mnemonic)
    if vecop:
        op, precision, width = vecop.group(1), vecop.group(2), int(vecop.group(3))
        expected = 4 if op == "fma" else 3
        if len(operands) != expected:
            raise AssemblerError(f"{mnemonic} expects {expected} operands")
        regs = [parse_register(o) for o in operands]
        return VecOp(op, width, regs[0], tuple(regs[1:]), precision)

    mem = _MEM_RE.match(mnemonic)
    if mem:
        kind, width = mem.group(1), int(mem.group(2))
        if len(operands) != 2:
            raise AssemblerError(f"{mnemonic} expects 2 operands")
        if kind == "vload":
            return Load(parse_register(operands[0]), parse_addr(operands[1]), width)
        return Store(
            parse_register(operands[0]),
            parse_addr(operands[1]),
            width,
            nt=(kind == "vstorent"),
        )

    if mnemonic == "prefetch":
        if len(operands) != 1:
            raise AssemblerError("prefetch expects 1 operand")
        return PrefetchHint(parse_addr(operands[0]))
    if mnemonic == "clflush":
        if len(operands) != 1:
            raise AssemblerError("clflush expects 1 operand")
        return Flush(parse_addr(operands[0]))

    raise AssemblerError(f"unknown mnemonic {mnemonic!r}")
