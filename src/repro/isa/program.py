"""Program IR: a tree of loops and instructions plus buffer declarations.

A :class:`Program` is what kernels build and what the core interpreter
executes.  Because every address is affine in the enclosing loop
induction variables, the IR supports exact *static* accounting: flops,
loads, stores, and bytes can be computed without execution, which the
test suite uses as ground truth against both the interpreter and the
simulated PMU.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

import numpy as np

from ..errors import IsaError
from .instructions import (
    AddrExpr,
    Flush,
    GatherLoad,
    Load,
    Loop,
    PrefetchHint,
    Store,
    VecOp,
)


@dataclass(frozen=True)
class StaticCounts:
    """Exact dynamic-execution counts derived from the IR.

    ``fp_by_width`` maps (width_bits, precision) to the number of counted
    FP instruction executions — the quantity the simulated PMU events
    mirror (before any overcount artifact).
    """

    flops: int = 0
    fp_by_width: Tuple[Tuple[Tuple[int, str], int], ...] = ()
    loads: int = 0
    stores: int = 0
    nt_stores: int = 0
    load_bytes: int = 0
    store_bytes: int = 0
    prefetches: int = 0
    flushes: int = 0

    @property
    def mem_ops(self) -> int:
        return self.loads + self.stores + self.nt_stores

    @property
    def total_bytes(self) -> int:
        return self.load_bytes + self.store_bytes

    def fp_width_map(self) -> Dict[Tuple[int, str], int]:
        return dict(self.fp_by_width)


class Program:
    """An executable program: buffer declarations plus a loop/instr tree.

    ``tables`` holds gather index tables: name -> int64 array of *byte
    offsets* into the gathered buffer (see
    :class:`~repro.isa.instructions.GatherLoad`).
    """

    def __init__(self, body: List[object], buffers: Dict[str, int],
                 tables: Dict[str, np.ndarray] = None) -> None:
        self.body: Tuple[object, ...] = tuple(body)
        self.buffers: Dict[str, int] = dict(buffers)
        self.tables: Dict[str, np.ndarray] = {
            name: np.asarray(values, dtype=np.int64)
            for name, values in (tables or {}).items()
        }
        self._validate()

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        for name, size in self.buffers.items():
            if size <= 0:
                raise IsaError(f"buffer {name!r} has non-positive size {size}")
        self._validate_nodes(self.body, scope=())

    def _validate_nodes(self, nodes, scope: Tuple[str, ...]) -> None:
        for node in nodes:
            if isinstance(node, Loop):
                if node.loop_id in scope:
                    raise IsaError(
                        f"loop id {node.loop_id!r} shadows an enclosing loop"
                    )
                self._validate_nodes(node.body, scope + (node.loop_id,))
            elif isinstance(node, (Load, Store, PrefetchHint, Flush)):
                self._validate_addr(node.addr, scope, node)
            elif isinstance(node, GatherLoad):
                self._validate_gather(node, scope)
            elif isinstance(node, VecOp):
                pass
            else:
                raise IsaError(f"unknown IR node {node!r}")

    def _validate_gather(self, node: GatherLoad, scope) -> None:
        if node.buffer not in self.buffers:
            raise IsaError(f"{node} gathers from undeclared buffer "
                           f"{node.buffer!r}")
        table_name = node.index_addr.buffer
        if table_name not in self.tables:
            raise IsaError(f"{node} references unknown index table "
                           f"{table_name!r}")
        for loop_id, _stride in node.index_addr.strides:
            if loop_id not in scope:
                raise IsaError(
                    f"{node} uses induction variable {loop_id!r} "
                    "outside its loop"
                )

    def _validate_addr(self, addr: AddrExpr, scope, node) -> None:
        if addr.buffer not in self.buffers:
            raise IsaError(f"{node} references undeclared buffer {addr.buffer!r}")
        for loop_id, _stride in addr.strides:
            if loop_id not in scope:
                raise IsaError(
                    f"{node} uses induction variable {loop_id!r} outside its loop"
                )

    # ------------------------------------------------------------------
    # static accounting
    # ------------------------------------------------------------------
    def static_counts(self) -> StaticCounts:
        """Exact dynamic counts obtained by walking the tree with trip
        multipliers — no execution required."""
        acc = _CountAccumulator()
        _accumulate(self.body, 1, acc)
        return acc.finish()

    def flop_count(self) -> int:
        return self.static_counts().flops

    def max_extent(self, buffer: str) -> int:
        """Highest byte offset (exclusive) any access may touch in
        ``buffer``; used to check accesses stay in bounds."""
        extents = [0]
        _max_extents(self.body, buffer, {}, extents)
        return extents[0]

    def check_bounds(self) -> None:
        """Raise :class:`IsaError` if any access can exceed its buffer."""
        for name, size in self.buffers.items():
            extent = self.max_extent(name)
            if extent > size:
                raise IsaError(
                    f"buffer {name!r} of {size} bytes is accessed up to "
                    f"offset {extent}"
                )
        self._check_gather_bounds()

    def _check_gather_bounds(self) -> None:
        gathers = [n for n in self.walk() if isinstance(n, GatherLoad)]
        if not gathers:
            return
        trips: Dict[str, int] = {}
        for node in self.walk():
            if isinstance(node, Loop):
                trips[node.loop_id] = node.trips
        for node in gathers:
            table = self.tables[node.index_addr.buffer]
            max_index = node.index_addr.offset + sum(
                max(trips.get(lid, 1) - 1, 0) * stride
                for lid, stride in node.index_addr.strides
                if stride > 0
            )
            if max_index >= len(table):
                raise IsaError(
                    f"{node} indexes table entry {max_index} but the "
                    f"table has {len(table)} entries"
                )
            if len(table):
                hi = int(table.max()) + node.bytes
                size = self.buffers[node.buffer]
                if hi > size:
                    raise IsaError(
                        f"{node}: table offsets reach byte {hi} of a "
                        f"{size}-byte buffer"
                    )

    def walk(self) -> Iterator[object]:
        """Depth-first iterator over every node of the tree."""
        stack = list(reversed(self.body))
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, Loop):
                stack.extend(reversed(node.body))

    def instruction_count(self) -> int:
        """Static (not dynamic) number of leaf instructions."""
        return sum(1 for n in self.walk() if not isinstance(n, Loop))

    def __repr__(self) -> str:
        return (
            f"Program({self.instruction_count()} static instructions, "
            f"{len(self.buffers)} buffers)"
        )


class _CountAccumulator:
    def __init__(self) -> None:
        self.flops = 0
        self.fp_by_width: Dict[Tuple[int, str], int] = {}
        self.loads = 0
        self.stores = 0
        self.nt_stores = 0
        self.load_bytes = 0
        self.store_bytes = 0
        self.prefetches = 0
        self.flushes = 0

    def finish(self) -> StaticCounts:
        return StaticCounts(
            flops=self.flops,
            fp_by_width=tuple(sorted(self.fp_by_width.items())),
            loads=self.loads,
            stores=self.stores,
            nt_stores=self.nt_stores,
            load_bytes=self.load_bytes,
            store_bytes=self.store_bytes,
            prefetches=self.prefetches,
            flushes=self.flushes,
        )


def _accumulate(nodes, multiplier: int, acc: _CountAccumulator) -> None:
    for node in nodes:
        if isinstance(node, Loop):
            _accumulate(node.body, multiplier * node.trips, acc)
        elif isinstance(node, VecOp):
            acc.flops += node.flops * multiplier
            if node.flops:
                key = (node.width_bits, node.precision)
                acc.fp_by_width[key] = acc.fp_by_width.get(key, 0) + multiplier
        elif isinstance(node, (Load, GatherLoad)):
            acc.loads += multiplier
            acc.load_bytes += node.bytes * multiplier
        elif isinstance(node, Store):
            if node.nt:
                acc.nt_stores += multiplier
            else:
                acc.stores += multiplier
            acc.store_bytes += node.bytes * multiplier
        elif isinstance(node, PrefetchHint):
            acc.prefetches += multiplier
        elif isinstance(node, Flush):
            acc.flushes += multiplier


def _max_extents(nodes, buffer: str, max_ivs: Dict[str, int], extents) -> None:
    for node in nodes:
        if isinstance(node, Loop):
            inner = dict(max_ivs)
            inner[node.loop_id] = max(node.trips - 1, 0)
            _max_extents(node.body, buffer, inner, extents)
        elif isinstance(node, (Load, Store, PrefetchHint, Flush)):
            if node.addr.buffer != buffer:
                continue
            width = getattr(node, "width_bits", 8 * 64)  # hints touch a line
            hi = node.addr.offset + width // 8
            for loop_id, stride in node.addr.strides:
                if stride > 0:
                    hi += max_ivs.get(loop_id, 0) * stride
            extents[0] = max(extents[0], hi)
