"""Instruction set of the simulated vector ISA.

The ISA is deliberately small — it is the subset of x86 SIMD that the
ISPASS'14 measurement methodology cares about:

* packed/scalar floating-point arithmetic (``add``, ``sub``, ``mul``,
  ``div``, ``fma``, ``max``) at widths 64/128/256/512 bits,
* loads and stores, including non-temporal (streaming) stores,
* software prefetch hints and cache-line flushes.

Memory operands are *affine address expressions* over loop induction
variables, which is what lets the interpreter vectorise whole loop nests
instead of stepping instruction by instruction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..errors import IsaError
from .registers import Register

VALID_WIDTHS = (64, 128, 256, 512)

PRECISION_F64 = "f64"
PRECISION_F32 = "f32"
_PRECISION_BYTES = {PRECISION_F64: 8, PRECISION_F32: 4}

FLOP_OPS = ("add", "sub", "mul", "div", "fma")
# max/min move data and compare; Intel's FP_ARITH/FP_COMP_OPS events do not
# count them, which is exactly the applicability limitation the paper
# discusses.  They execute on FP ports but contribute zero counted flops.
NONFLOP_OPS = ("max", "min")
VEC_OPS = FLOP_OPS + NONFLOP_OPS


def lanes(width_bits: int, precision: str = PRECISION_F64) -> int:
    """Number of elements a vector of ``width_bits`` holds."""
    if width_bits not in VALID_WIDTHS:
        raise IsaError(f"invalid vector width {width_bits}")
    return width_bits // (_PRECISION_BYTES[precision] * 8)


def flops_of(op: str, width_bits: int, precision: str = PRECISION_F64) -> int:
    """Counted flops of one dynamic execution of a vector op.

    FMA counts two flops per lane; ``max``/``min`` count zero, mirroring
    the PMU events the paper uses for work measurement.
    """
    if op in NONFLOP_OPS:
        return 0
    if op not in FLOP_OPS:
        raise IsaError(f"unknown vector op {op!r}")
    per_lane = 2 if op == "fma" else 1
    return per_lane * lanes(width_bits, precision)


@dataclass(frozen=True)
class AddrExpr:
    """Affine address ``buffer + offset + sum(iv * stride)``.

    ``strides`` maps loop induction-variable ids to byte strides.  The
    expression is affine in every enclosing loop variable, which the
    interpreter exploits to evaluate all addresses of a loop nest with
    one vectorised computation.
    """

    buffer: str
    offset: int = 0
    strides: Tuple[Tuple[str, int], ...] = ()

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise IsaError(f"negative address offset {self.offset}")
        seen = set()
        for loop_id, _stride in self.strides:
            if loop_id in seen:
                raise IsaError(f"duplicate loop id {loop_id!r} in address")
            seen.add(loop_id)

    def stride_of(self, loop_id: str) -> int:
        """Byte stride with respect to one induction variable (0 if absent)."""
        for lid, stride in self.strides:
            if lid == loop_id:
                return stride
        return 0

    def evaluate(self, ivs: dict) -> int:
        """Concrete byte offset within the buffer for given iv values."""
        addr = self.offset
        for loop_id, stride in self.strides:
            try:
                addr += ivs[loop_id] * stride
            except KeyError as exc:
                raise IsaError(
                    f"address references loop {loop_id!r} outside its scope"
                ) from exc
        return addr

    def __str__(self) -> str:
        parts = [f"{lid}*{stride}" for lid, stride in self.strides]
        if self.offset or not parts:
            parts.append(str(self.offset))
        return f"{self.buffer}[{'+'.join(parts)}]"


@dataclass(frozen=True)
class VecOp:
    """A SIMD arithmetic instruction, e.g. ``vfma.f64.256 v2, v0, v1, v2``."""

    op: str
    width_bits: int
    dst: Register
    srcs: Tuple[Register, ...]
    precision: str = PRECISION_F64

    def __post_init__(self) -> None:
        if self.op not in VEC_OPS:
            raise IsaError(f"unknown vector op {self.op!r}")
        if self.width_bits not in VALID_WIDTHS:
            raise IsaError(f"invalid vector width {self.width_bits}")
        if self.precision not in _PRECISION_BYTES:
            raise IsaError(f"unknown precision {self.precision!r}")
        expected = 3 if self.op == "fma" else 2
        if len(self.srcs) != expected:
            raise IsaError(
                f"{self.op} expects {expected} source registers, got {len(self.srcs)}"
            )
        if not self.dst.is_vector or any(not s.is_vector for s in self.srcs):
            raise IsaError(f"{self.op} operates on vector registers only")

    @property
    def flops(self) -> int:
        """Counted flops per dynamic execution."""
        return flops_of(self.op, self.width_bits, self.precision)

    @property
    def lanes(self) -> int:
        return lanes(self.width_bits, self.precision)

    def __str__(self) -> str:
        regs = ", ".join(str(r) for r in (self.dst,) + self.srcs)
        return f"v{self.op}.{self.precision}.{self.width_bits} {regs}"


@dataclass(frozen=True)
class Load:
    """A vector load from an affine address."""

    dst: Register
    addr: AddrExpr
    width_bits: int

    def __post_init__(self) -> None:
        if self.width_bits not in VALID_WIDTHS:
            raise IsaError(f"invalid load width {self.width_bits}")
        if not self.dst.is_vector:
            raise IsaError("loads target vector registers")

    @property
    def bytes(self) -> int:
        return self.width_bits // 8

    def __str__(self) -> str:
        return f"vload.{self.width_bits} {self.dst}, {self.addr}"


@dataclass(frozen=True)
class Store:
    """A vector store; ``nt=True`` models a non-temporal streaming store.

    Non-temporal stores bypass the cache hierarchy and avoid the
    read-for-ownership traffic of write-allocate caches — the reason the
    paper's fastest bandwidth benchmark uses them.
    """

    src: Register
    addr: AddrExpr
    width_bits: int
    nt: bool = False

    def __post_init__(self) -> None:
        if self.width_bits not in VALID_WIDTHS:
            raise IsaError(f"invalid store width {self.width_bits}")
        if not self.src.is_vector:
            raise IsaError("stores read vector registers")

    @property
    def bytes(self) -> int:
        return self.width_bits // 8

    def __str__(self) -> str:
        mnem = "vstorent" if self.nt else "vstore"
        return f"{mnem}.{self.width_bits} {self.src}, {self.addr}"


@dataclass(frozen=True)
class GatherLoad:
    """An indexed (gather) load: data-dependent addressing.

    Affine addresses cannot express sparse access, but for a *fixed*
    sparse structure the address sequence is statically known.  A
    gather names an index table (registered on the Program); the
    element picked from the table is selected by an affine expression
    ``index_addr`` whose "buffer" is the table name and whose strides
    count table *elements*.  The fetched table value is the byte offset
    into ``buffer``.
    """

    dst: Register
    buffer: str
    index_addr: AddrExpr
    width_bits: int = 64

    def __post_init__(self) -> None:
        if self.width_bits not in VALID_WIDTHS:
            raise IsaError(f"invalid gather width {self.width_bits}")
        if not self.dst.is_vector:
            raise IsaError("gathers target vector registers")

    @property
    def bytes(self) -> int:
        return self.width_bits // 8

    def __str__(self) -> str:
        return (f"vgather.{self.width_bits} {self.dst}, "
                f"{self.buffer}[@{self.index_addr}]")


@dataclass(frozen=True)
class PrefetchHint:
    """Software prefetch of the line containing ``addr`` (prefetcht0)."""

    addr: AddrExpr

    def __str__(self) -> str:
        return f"prefetch {self.addr}"


@dataclass(frozen=True)
class Flush:
    """Flush the line containing ``addr`` (clflush): used by cold-cache
    protocols and counter-validation microbenchmarks."""

    addr: AddrExpr

    def __str__(self) -> str:
        return f"clflush {self.addr}"


@dataclass(frozen=True)
class Loop:
    """A counted loop; ``loop_id`` names the induction variable."""

    loop_id: str
    trips: int
    body: Tuple[object, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.trips < 0:
            raise IsaError(f"loop {self.loop_id!r} has negative trip count")
        if not self.loop_id:
            raise IsaError("loop id must be non-empty")


Instruction = (VecOp, Load, Store, GatherLoad, PrefetchHint, Flush)


def is_instruction(node: object) -> bool:
    """True when ``node`` is a leaf instruction (not a loop)."""
    return isinstance(node, Instruction)


def memory_instructions(nodes) -> list:
    """Leaf memory instructions among ``nodes`` (no loop recursion)."""
    return [n for n in nodes
            if isinstance(n, (Load, Store, GatherLoad, PrefetchHint, Flush))]
