"""Platform microbenchmarks: peak flops and peak bandwidth."""

from .cachebw import (
    LEVELS,
    LevelBandwidth,
    measure_level_bandwidth,
    measure_level_bandwidths,
)
from .peakbw import (
    PeakBandwidthResult,
    bandwidth_by_method,
    bandwidth_methods,
    best_bandwidth,
    default_stream_elements,
    measure_bandwidth,
    peak_bandwidth_table,
)
from .peakflops import (
    PeakFlopsResult,
    measure_peak_flops,
    peak_flops_program,
    peak_flops_table,
)

__all__ = [
    "LEVELS",
    "LevelBandwidth",
    "PeakBandwidthResult",
    "PeakFlopsResult",
    "bandwidth_by_method",
    "bandwidth_methods",
    "best_bandwidth",
    "default_stream_elements",
    "measure_bandwidth",
    "measure_level_bandwidth",
    "measure_level_bandwidths",
    "measure_peak_flops",
    "peak_bandwidth_table",
    "peak_flops_program",
    "peak_flops_table",
]
