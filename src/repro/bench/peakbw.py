"""Peak memory bandwidth microbenchmarks (paper section 2.2).

Bandwidth is method-dependent, so — like the paper — we take the
maximum over independent checks: a load-only sweep, ``memset`` and
``memcpy`` analogues (write-allocate), their non-temporal variants, and
the STREAM triad.  Reported bandwidth is *application bytes* over time
(the STREAM convention), which is why the non-temporal memset wins on
sockets: it moves one line per line written instead of two.

Multi-threaded runs replicate the paper's discipline: each rank's
buffers are bound to its core's NUMA node (their "run one benchmark
copy per socket and sum" method).  ``bind_memory=False`` reproduces the
unbound anti-pattern the paper warns about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..errors import ConfigurationError
from ..kernels.base import CodegenCaps
from ..kernels.blas1 import StreamTriad
from ..kernels.memops import Memcpy, Memset, ReadStream
from ..machine.machine import Machine
from ..units import median

#: method name -> (kernel factory, application bytes per element)
_METHODS = {
    "read": (ReadStream, 8),
    "memset": (Memset, 8),
    "memset-nt": (lambda: Memset(nt_stores=True), 8),
    "memcpy": (Memcpy, 16),
    "memcpy-nt": (lambda: Memcpy(nt_stores=True), 16),
    "triad": (StreamTriad, 24),
}


@dataclass(frozen=True)
class PeakBandwidthResult:
    """One bandwidth measurement."""

    machine: str
    method: str
    threads: int
    bound: bool
    bytes_per_second: float
    theoretical_bytes_per_second: float

    @property
    def efficiency(self) -> float:
        return self.bytes_per_second / self.theoretical_bytes_per_second


def bandwidth_methods() -> List[str]:
    """Names of the available bandwidth checks."""
    return sorted(_METHODS)


def default_stream_elements(machine: Machine) -> int:
    """A working set several times the aggregate cache capacity (the
    paper streams 0.5 GB; we scale with the machine's caches)."""
    target_bytes = 4 * machine.hierarchy.total_cache_bytes()
    lanes = machine.ports.max_simd_width // 64
    granule = lanes * machine.topology.total_cores * 8
    elements = max(target_bytes // 8, granule)
    return (elements // granule) * granule


def measure_bandwidth(machine: Machine, method: str = "triad",
                      cores: Sequence[int] = (0,), n: Optional[int] = None,
                      reps: int = 3, bind_memory: bool = True) -> PeakBandwidthResult:
    """Measure one bandwidth method on a set of cores."""
    try:
        factory, app_bytes = _METHODS[method]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown bandwidth method {method!r}; known: {bandwidth_methods()}"
        ) from exc
    cores = tuple(cores)
    kernel = factory()
    caps = CodegenCaps.from_machine(machine)
    if n is None:
        n = default_stream_elements(machine)
    kernel.validate_n(n, caps, len(cores))
    jobs = []
    for rank, core_id in enumerate(cores):
        program = kernel.build(n, caps, rank=rank, nranks=len(cores))
        node = machine.topology.node_of_core(core_id) if bind_memory else 0
        jobs.append((machine.load(program, node=node), core_id))
    seconds = []
    for _ in range(reps):
        machine.bust_caches()
        seconds.append(machine.run_parallel(jobs).seconds)
    nodes = (
        len({machine.topology.node_of_core(c) for c in cores})
        if bind_memory else 1
    )
    return PeakBandwidthResult(
        machine=machine.spec.name,
        method=method,
        threads=len(cores),
        bound=bind_memory,
        bytes_per_second=app_bytes * n / median(seconds),
        theoretical_bytes_per_second=machine.theoretical_peak_bandwidth(nodes),
    )


def peak_bandwidth_table(machine: Machine,
                         methods: Optional[Sequence[str]] = None,
                         thread_counts: Optional[Sequence[int]] = None,
                         n: Optional[int] = None,
                         reps: int = 2) -> List[PeakBandwidthResult]:
    """The paper's bandwidth table: methods x thread counts."""
    methods = list(methods) if methods else bandwidth_methods()
    if thread_counts is None:
        thread_counts = [1, machine.topology.total_cores]
    results = []
    for method in methods:
        for threads in thread_counts:
            cores = machine.topology.first_cores(threads)
            results.append(
                measure_bandwidth(machine, method, cores, n=n, reps=reps)
            )
    return results


def best_bandwidth(machine: Machine, cores: Sequence[int],
                   n: Optional[int] = None, reps: int = 2,
                   methods: Optional[Sequence[str]] = None) -> PeakBandwidthResult:
    """Maximum over methods — the roofline's beta for this thread set."""
    methods = list(methods) if methods else bandwidth_methods()
    results = [
        measure_bandwidth(machine, method, cores, n=n, reps=reps)
        for method in methods
    ]
    return max(results, key=lambda r: r.bytes_per_second)


def bandwidth_by_method(machine: Machine, cores: Sequence[int],
                        n: Optional[int] = None) -> Dict[str, float]:
    """Convenience: method -> bytes/s for one thread set."""
    return {
        method: measure_bandwidth(machine, method, cores, n=n, reps=1).bytes_per_second
        for method in bandwidth_methods()
    }
