"""Per-cache-level bandwidth microbenchmarks.

The classic roofline has one slanted roof (DRAM).  Its cache-aware
extension (Ilic et al.) adds one bandwidth ceiling per memory level,
each measured the same way the paper measures DRAM bandwidth: stream a
working set sized to *reside in that level* and time repeated sweeps.

These measurements feed :func:`repro.roofline.cache_aware.
build_cache_aware_roofline`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import ConfigurationError
from ..isa.builder import ProgramBuilder
from ..machine.machine import Machine
from ..units import median

#: level name -> how its resident working set is derived
LEVELS = ("L1", "L2", "L3", "DRAM")


@dataclass(frozen=True)
class LevelBandwidth:
    """Measured streaming bandwidth out of one memory level."""

    level: str
    working_set_bytes: int
    bytes_per_second: float


def _resident_bytes(machine: Machine, level: str) -> int:
    hierarchy = machine.spec.hierarchy
    if level == "L1":
        return hierarchy.l1.size_bytes // 2
    if level == "L2":
        # large enough to spill L1, small enough to stay in L2
        return (hierarchy.l1.size_bytes + hierarchy.l2.size_bytes) // 2
    if level == "L3":
        return (hierarchy.l2.size_bytes + hierarchy.l3.size_bytes) // 2
    if level == "DRAM":
        return 4 * hierarchy.l3.size_bytes
    raise ConfigurationError(f"unknown memory level {level!r}")


def _sweep_program(machine: Machine, ws_bytes: int, reps: int):
    """``reps`` repeated vector-load sweeps over one buffer."""
    width = machine.ports.max_simd_width
    step = width // 8
    ws_bytes -= ws_bytes % step
    if ws_bytes < step:
        raise ConfigurationError("working set smaller than one vector")
    b = ProgramBuilder()
    buf = b.buffer("ws", ws_bytes)
    with b.loop(reps, "rep"):
        with b.loop(ws_bytes // step, "i") as i:
            b.load(buf[i * step], width=width)
    return b.build(), ws_bytes


def measure_level_bandwidth(machine: Machine, level: str, core: int = 0,
                            sweeps: int = 8,
                            timing_reps: int = 3) -> LevelBandwidth:
    """Measure the read bandwidth a core sees from one level."""
    ws = _resident_bytes(machine, level)
    program, ws = _sweep_program(machine, ws, sweeps)
    loaded = machine.load(program)
    machine.bust_caches()
    machine.run(loaded, core_id=core)  # populate the level
    seconds = []
    for _ in range(timing_reps):
        seconds.append(machine.run(loaded, core_id=core).seconds)
    return LevelBandwidth(
        level=level,
        working_set_bytes=ws,
        bytes_per_second=sweeps * ws / median(seconds),
    )


def measure_level_bandwidths(machine: Machine, core: int = 0,
                             sweeps: int = 8,
                             levels: Optional[List[str]] = None
                             ) -> Dict[str, LevelBandwidth]:
    """All levels' bandwidths (the cache-aware model's inputs)."""
    levels = list(levels) if levels else list(LEVELS)
    results = {}
    for level in levels:
        # DRAM sweeps are long; one repetition suffices there
        n_sweeps = 2 if level == "DRAM" else sweeps
        results[level] = measure_level_bandwidth(
            machine, level, core=core, sweeps=n_sweeps
        )
    return results
