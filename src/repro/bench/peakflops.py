"""Peak computational performance microbenchmark (paper section 2.1).

The benchmark is runtime-generated code (compiler-agnostic, cannot be
dead-code-eliminated): many *independent* FP dependency chains, so the
core's issue throughput — not instruction latency — is the limit.  On
FMA-less Sandy Bridge cores the generated mix is balanced add+mul
chains (one per port); on FMA machines it is pure FMA chains.  The
chain count must cover ``latency x ports``, which the default of 12
does for every preset.

Peaks are measured per SIMD width and per thread count; the measured
value against the datasheet peak is the paper's peak-performance table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..errors import ConfigurationError
from ..isa.builder import ProgramBuilder
from ..isa.program import Program
from ..machine.machine import Machine
from ..units import median


@dataclass(frozen=True)
class PeakFlopsResult:
    """One peak-performance measurement."""

    machine: str
    width_bits: int
    threads: int
    flops_per_second: float
    flops_per_cycle_per_core: float
    theoretical_flops_per_second: float

    @property
    def efficiency(self) -> float:
        """Measured / theoretical peak."""
        return self.flops_per_second / self.theoretical_flops_per_second


def peak_flops_program(width_bits: int, has_fma: bool,
                       chains: int = 12, trips: int = 65536) -> Program:
    """Generate the dependency-free FP chain benchmark."""
    if chains < 2 or chains % 2:
        raise ConfigurationError("chain count must be an even number >= 2")
    b = ProgramBuilder()
    operand_a = b.reg()
    operand_b = b.reg()
    accs = b.regs(chains)
    with b.loop(trips):
        if has_fma:
            for acc in accs:
                b.fma(operand_a, operand_b, acc, width=width_bits)
        else:
            # balanced mix: half the chains on the mul port, half on add
            for idx, acc in enumerate(accs):
                if idx % 2:
                    b.add(acc, operand_a, width=width_bits, dst=acc)
                else:
                    b.mul(acc, operand_a, width=width_bits, dst=acc)
    return b.build()


def measure_peak_flops(machine: Machine, width_bits: Optional[int] = None,
                       cores: Sequence[int] = (0,), chains: int = 12,
                       trips: int = 65536, reps: int = 3) -> PeakFlopsResult:
    """Measure peak flop/s at one width on a set of cores."""
    width = width_bits or machine.ports.max_simd_width
    if not machine.ports.supports_width(width):
        raise ConfigurationError(
            f"{machine.spec.name} has no {width}-bit SIMD"
        )
    cores = tuple(cores)
    program = peak_flops_program(width, machine.ports.has_fma,
                                 chains=chains, trips=trips)
    flops_per_program = program.static_counts().flops
    jobs = [(machine.load(program), core_id) for core_id in cores]
    seconds = []
    cycles = []
    for _ in range(reps):
        run = machine.run_parallel(jobs)
        seconds.append(run.seconds)
        cycles.append(run.cycles)
    best_seconds = median(seconds)
    total_flops = flops_per_program * len(cores)
    return PeakFlopsResult(
        machine=machine.spec.name,
        width_bits=width,
        threads=len(cores),
        flops_per_second=total_flops / best_seconds,
        flops_per_cycle_per_core=flops_per_program / median(cycles),
        theoretical_flops_per_second=machine.theoretical_peak_flops(
            width, len(cores)
        ),
    )


def peak_flops_table(machine: Machine,
                     widths: Optional[Sequence[int]] = None,
                     thread_counts: Optional[Sequence[int]] = None,
                     trips: int = 65536) -> List[PeakFlopsResult]:
    """The paper's peak-performance table: widths x thread counts."""
    if widths is None:
        widths = [w for w in (64, 128, 256, 512)
                  if machine.ports.supports_width(w)]
    if thread_counts is None:
        thread_counts = [1, machine.topology.total_cores]
    results = []
    for width in widths:
        for threads in thread_counts:
            cores = machine.topology.first_cores(threads)
            results.append(
                measure_peak_flops(machine, width, cores, trips=trips)
            )
    return results
