"""Kernels: the paper's evaluation subjects, with exact analytic work
and compulsory-traffic models used as counter-validation ground truth."""

from .base import CodegenCaps, Kernel, partition_range
from .blas1 import Daxpy, Dot, Scale, StreamTriad, StridedSum, SumReduction
from .blas2 import Dgemv
from .blas3 import Dgemm
from .fft import Fft
from .memops import Memcpy, Memset, ReadStream
from .registry import kernel_names, make_kernel, register_kernel
from .spmv import Spmv
from .stencil import Stencil3

__all__ = [
    "CodegenCaps",
    "Daxpy",
    "Dgemm",
    "Dgemv",
    "Dot",
    "Fft",
    "Kernel",
    "Memcpy",
    "Memset",
    "ReadStream",
    "Scale",
    "Spmv",
    "Stencil3",
    "StreamTriad",
    "StridedSum",
    "SumReduction",
    "kernel_names",
    "make_kernel",
    "partition_range",
    "register_kernel",
]
