"""ERT-style microbenchmark kernel (working set x flops-per-byte probe).

The Empirical Roofline Toolkit discovers a machine's ceilings by timing
one parameterised kernel over a grid of working-set sizes and
flops-per-element counts: small sets resident in L1 expose the L1
bandwidth, larger ones fall out of each cache level in turn, and a
high flop count on an L1-resident set exposes the compute roof.  This
is that kernel: a single vector is streamed ``sweeps`` times and each
element receives ``flops_per_elem`` floating-point operations as a
chained multiply/FMA sequence (the ``ERT_FLOP`` family).

The chain is built so the *flop count is exact and FMA-independent*:
an odd count leads with a multiply, and every remaining pair is one
FMA (2 flops) on FMA machines or a multiply+add pair without it.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..isa.program import Program
from .base import CodegenCaps, Kernel, elements_bytes, new_builder, partition_range


class ErtKernel(Kernel):
    """``a[i] = f(a[i])`` with a configurable flop chain per element."""

    name = "ert"

    def __init__(self, flops_per_elem: int = 1, sweeps: int = 1) -> None:
        if flops_per_elem < 1:
            raise ConfigurationError("ert: need at least one flop per element")
        if sweeps < 1:
            raise ConfigurationError("ert: need at least one sweep")
        self.flops_per_elem = flops_per_elem
        self.sweeps = sweeps

    def build(self, n: int, caps: CodegenCaps,
              rank: int = 0, nranks: int = 1) -> Program:
        self.validate_n(n, caps, nranks)
        lo, hi = partition_range(n, rank, nranks)
        b = new_builder()
        a = b.buffer("a", elements_bytes(n))
        alpha = b.reg()
        beta = b.reg()
        width = caps.width_bits
        step = caps.vec_bytes
        base = lo * 8
        for _ in range(self.sweeps):
            with b.loop((hi - lo) // caps.lanes) as i:
                v = b.load(a[i * step + base], width=width)
                remaining = self.flops_per_elem
                if remaining % 2:
                    v = b.mul(alpha, v, width=width)
                    remaining -= 1
                while remaining:
                    if caps.has_fma:
                        v = b.fma(alpha, v, beta, width=width)
                    else:
                        t = b.mul(alpha, v, width=width)
                        v = b.add(t, beta, width=width)
                    remaining -= 2
                b.store(v, a[i * step + base], width=width)
        return b.build()

    def flops(self, n: int) -> int:
        return self.flops_per_elem * n * self.sweeps

    def compulsory_bytes(self, n: int) -> int:
        return 16 * n  # read a once + write it back once

    def footprint_bytes(self, n: int) -> int:
        return 8 * n

    def describe(self) -> str:
        return (f"ert probe ({self.flops_per_elem} flops/elem, "
                f"{self.sweeps} sweep(s))")
