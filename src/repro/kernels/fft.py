"""Iterative radix-2 complex FFT (Cooley-Tukey, in place).

The FFT is the paper's intermediate-intensity kernel: 5 n log2(n) flops
over ~16 n bytes of data gives an operational intensity that grows with
log(n) while the transform fits in cache, then saturates once every
pass streams from DRAM — the characteristic bent trajectory on the
roofline plot.

Data layout: ``n`` complex doubles, re/im interleaved (16 bytes per
element), so one 128-bit load/store moves one complex value.  Each of
the log2(n) passes performs n/2 butterflies of 10 flops each
(complex twiddle multiply: 4 mul + 2 add; butterfly combine: 2 add/sub,
all on 2-lane vectors).

Pass loop nesting is chosen per pass so the *flat* (vectorised) loop is
always the longer one: early passes iterate groups innermost, late
passes iterate butterflies innermost.  This mirrors how real FFT codes
pick their inner loop for stride behaviour.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..isa.program import Program
from ..units import is_power_of_two, log2_int
from .base import CodegenCaps, Kernel, new_builder


class Fft(Kernel):
    """In-place radix-2 complex-to-complex FFT of size ``n``.

    With ``nranks > 1`` each rank transforms an independent batch FFT of
    size ``n // nranks`` (a batched-transform interpretation of the
    parallel case; documented in DESIGN.md).
    """

    name = "fft"

    #: complex element size in bytes (interleaved re/im doubles)
    ELEM = 16
    #: counted flops per butterfly
    FLOPS_PER_BUTTERFLY = 10

    def build(self, n: int, caps: CodegenCaps,
              rank: int = 0, nranks: int = 1) -> Program:
        self.validate_n(n, caps, nranks)
        local = n // nranks
        b = new_builder()
        data = b.buffer("data", self.ELEM * local)
        tw = b.buffer("twiddle", max(8 * local, 16))
        stages = log2_int(local)
        for stage in range(1, stages + 1):
            self._emit_stage(b, data, tw, local, stage)
        return b.build()

    def _emit_stage(self, b, data, tw, n, stage: int) -> None:
        m = 1 << stage            # butterfly group span
        half = m // 2             # butterflies per group
        groups = n // m
        elem = self.ELEM
        if half >= groups:
            # butterflies innermost: unit-ish stride within each group
            with b.loop(groups, f"g{stage}") as g:
                self._emit_butterflies(
                    b, data, tw, outer=g, outer_stride=m * elem,
                    inner_trips=half, inner_stride=elem,
                    twiddle_stride=8, half_offset=half * elem,
                )
        else:
            # groups innermost: stride m*elem, same butterfly index j
            with b.loop(half, f"j{stage}") as j:
                self._emit_butterflies(
                    b, data, tw, outer=j, outer_stride=elem,
                    inner_trips=groups, inner_stride=m * elem,
                    twiddle_stride=0, half_offset=half * elem,
                    twiddle_outer_stride=8,
                )

    def _emit_butterflies(self, b, data, tw, outer, outer_stride: int,
                          inner_trips: int, inner_stride: int,
                          twiddle_stride: int, half_offset: int,
                          twiddle_outer_stride: int = 0) -> None:
        with b.loop(inner_trips) as i:
            u_addr = data[outer * outer_stride + i * inner_stride]
            t_addr = data[outer * outer_stride + i * inner_stride
                          + half_offset]
            w_addr = tw[outer * twiddle_outer_stride + i * twiddle_stride]
            vu = b.load(u_addr, width=128)
            vt = b.load(t_addr, width=128)
            vw = b.load(w_addr, width=128)
            # complex twiddle multiply: 4 mul + 2 add (as two packed muls
            # and one packed add after a swizzle), then combine: +/-.
            m1 = b.mul(vw, vt, width=128)
            m2 = b.mul(vw, vt, width=128)
            tmul = b.add(m1, m2, width=128)
            out_u = b.add(vu, tmul, width=128)
            out_t = b.sub(vu, tmul, width=128)
            b.store(out_u, u_addr, width=128)
            b.store(out_t, t_addr, width=128)

    # ------------------------------------------------------------------
    # ground truth
    # ------------------------------------------------------------------
    def flops(self, n: int) -> int:
        return self.FLOPS_PER_BUTTERFLY * (n // 2) * log2_int(n)

    def expected_flops(self, n: int, caps: CodegenCaps, nranks: int = 1) -> int:
        local = n // nranks
        return nranks * self.flops(local)

    def compulsory_bytes(self, n: int) -> int:
        # one read + one write-back of the data, plus the twiddle table
        return 2 * self.ELEM * n + 8 * n

    def footprint_bytes(self, n: int) -> int:
        return self.ELEM * n + 8 * n

    def validate_n(self, n: int, caps: CodegenCaps, nranks: int = 1) -> None:
        if n % nranks:
            raise ConfigurationError(f"fft: n={n} not divisible by {nranks} ranks")
        local = n // nranks
        if not is_power_of_two(local) or local < 4:
            raise ConfigurationError(
                f"fft: per-rank size {local} must be a power of two >= 4"
            )
        if caps.width_bits < 128:
            raise ConfigurationError("fft codegen needs at least 128-bit SIMD")

    def describe(self) -> str:
        return "radix-2 complex FFT (in place, interleaved)"
