"""Kernel registry: name -> factory, for the CLI and experiments."""

from __future__ import annotations

from typing import Callable, Dict, List

from ..errors import ConfigurationError
from .base import Kernel
from .blas1 import Daxpy, Dot, Scale, StreamTriad, StridedSum, SumReduction
from .blas2 import Dgemv
from .blas3 import Dgemm
from .fft import Fft
from .memops import Memcpy, Memset, ReadStream
from .spmv import Spmv
from .stencil import Stencil3

_FACTORIES: Dict[str, Callable[[], Kernel]] = {
    "daxpy": Daxpy,
    "triad": StreamTriad,
    "triad-nt": lambda: StreamTriad(nt_stores=True),
    "dot": Dot,
    "scale": Scale,
    "sum": SumReduction,
    "strided-sum": StridedSum,
    "dgemv-row": lambda: Dgemv(layout="row"),
    "dgemv-col": lambda: Dgemv(layout="col"),
    "dgemm-naive": lambda: Dgemm(variant="naive"),
    "dgemm-ikj": lambda: Dgemm(variant="ikj"),
    "dgemm-blocked": lambda: Dgemm(variant="blocked"),
    "dgemm-tiled": lambda: Dgemm(variant="tiled"),
    "fft": Fft,
    "spmv": Spmv,
    "spmv-wide": lambda: Spmv(bandwidth=1 << 20),
    "stencil3": Stencil3,
    "read": ReadStream,
    "memset": Memset,
    "memset-nt": lambda: Memset(nt_stores=True),
    "memcpy": Memcpy,
    "memcpy-nt": lambda: Memcpy(nt_stores=True),
}


def make_kernel(name: str) -> Kernel:
    """Instantiate a kernel by registry name."""
    try:
        factory = _FACTORIES[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown kernel {name!r}; known: {', '.join(kernel_names())}"
        ) from exc
    return factory()


def kernel_names() -> List[str]:
    """All registered kernel names, sorted."""
    return sorted(_FACTORIES)


def register_kernel(name: str, factory: Callable[[], Kernel]) -> None:
    """Register a user-defined kernel (library extension point)."""
    if name in _FACTORIES:
        raise ConfigurationError(f"kernel {name!r} already registered")
    _FACTORIES[name] = factory
