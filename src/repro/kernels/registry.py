"""Kernel registry: name -> factory, for the CLI, experiments, sweeps.

Factories are :func:`functools.partial` objects (not lambdas) so that
:func:`make_kernel` can forward extra keyword arguments — sweep points
address a kernel as ``registry name + kwargs`` and the kwargs must
reach the constructor (e.g. ``spmv`` with a custom gather bandwidth).
"""

from __future__ import annotations

from functools import partial
from typing import Callable, Dict, List

from ..errors import ConfigurationError
from .base import Kernel
from .blas1 import Daxpy, Dot, Scale, StreamTriad, StridedSum, SumReduction
from .blas2 import Dgemv
from .blas3 import Dgemm
from .ert import ErtKernel
from .fft import Fft
from .memops import Memcpy, Memset, ReadStream
from .spmv import Spmv
from .stencil import Stencil3

_FACTORIES: Dict[str, Callable[..., Kernel]] = {
    "daxpy": Daxpy,
    "triad": StreamTriad,
    "triad-nt": partial(StreamTriad, nt_stores=True),
    "dot": Dot,
    "scale": Scale,
    "sum": SumReduction,
    "strided-sum": StridedSum,
    "dgemv-row": partial(Dgemv, layout="row"),
    "dgemv-col": partial(Dgemv, layout="col"),
    "dgemm-naive": partial(Dgemm, variant="naive"),
    "dgemm-ikj": partial(Dgemm, variant="ikj"),
    "dgemm-blocked": partial(Dgemm, variant="blocked"),
    "dgemm-tiled": partial(Dgemm, variant="tiled"),
    "ert": ErtKernel,
    "fft": Fft,
    "spmv": Spmv,
    "spmv-wide": partial(Spmv, bandwidth=1 << 20),
    "stencil3": Stencil3,
    "read": ReadStream,
    "memset": Memset,
    "memset-nt": partial(Memset, nt_stores=True),
    "memcpy": Memcpy,
    "memcpy-nt": partial(Memcpy, nt_stores=True),
}


def make_kernel(name: str, **kwargs) -> Kernel:
    """Instantiate a kernel by registry name.

    ``kwargs`` are forwarded to the kernel constructor on top of the
    entry's baked-in arguments (a duplicate keyword is an error).
    """
    try:
        factory = _FACTORIES[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown kernel {name!r}; known: {', '.join(kernel_names())}"
        ) from exc
    try:
        return factory(**kwargs)
    except TypeError as exc:
        raise ConfigurationError(
            f"kernel {name!r} rejected arguments {kwargs}: {exc}"
        ) from exc


def kernel_names() -> List[str]:
    """All registered kernel names, sorted."""
    return sorted(_FACTORIES)


def register_kernel(name: str, factory: Callable[[], Kernel]) -> None:
    """Register a user-defined kernel (library extension point)."""
    if name in _FACTORIES:
        raise ConfigurationError(f"kernel {name!r} already registered")
    _FACTORIES[name] = factory
