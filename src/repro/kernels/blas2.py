"""BLAS-2: dense matrix-vector multiply (dgemv), row- and column-major.

dgemv sits between the streaming BLAS-1 kernels and compute-bound dgemm
on the intensity axis: 2 flops per matrix element that is read exactly
once.  The row-major variant walks the matrix at unit stride with vector
loads (the good case); the column-major variant must use scalar loads
that stride by a full row per inner iteration, so each element touch
pulls a whole cache line unless the active line window fits in cache —
the locality cliff the roofline plot makes visible.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..isa.program import Program
from .base import CodegenCaps, Kernel, new_builder, partition_range

_LAYOUTS = ("row", "col")


class Dgemv(Kernel):
    """``y = A @ x + y`` with an ``n x n`` matrix.

    ``accumulators`` partial sums hide FP latency in the row dot
    products; the generated reduction tree adds a few structural flops
    per row (accounted by :meth:`expected_flops`).
    """

    def __init__(self, layout: str = "row", accumulators: int = 2) -> None:
        if layout not in _LAYOUTS:
            raise ConfigurationError(f"dgemv layout must be one of {_LAYOUTS}")
        if accumulators <= 0:
            raise ConfigurationError("need at least one accumulator")
        self.layout = layout
        self.accumulators = accumulators
        self.name = f"dgemv-{layout}"

    # ------------------------------------------------------------------
    # codegen
    # ------------------------------------------------------------------
    def build(self, n: int, caps: CodegenCaps,
              rank: int = 0, nranks: int = 1) -> Program:
        self.validate_n(n, caps, nranks)
        row_lo, row_hi = partition_range(n, rank, nranks)
        b = new_builder()
        a = b.buffer("A", 8 * n * n)
        x = b.buffer("x", 8 * n)
        y = b.buffer("y", 8 * n)
        if self.layout == "row":
            self._build_row(b, a, x, y, n, caps, row_lo, row_hi)
        else:
            self._build_col(b, a, x, y, n, row_lo, row_hi)
        return b.build()

    def _build_row(self, b, a, x, y, n, caps, row_lo, row_hi) -> None:
        lanes = caps.lanes
        width = caps.width_bits
        k = self.accumulators
        row_bytes = 8 * n
        group = 8 * lanes * k
        with b.loop(row_hi - row_lo, "i") as i:
            accs = b.regs(k)
            with b.loop(n // (lanes * k), "j") as j:
                for t in range(k):
                    off = 8 * t * lanes
                    va = b.load(
                        a[i * row_bytes + j * group
                          + (row_lo * row_bytes + off)],
                        width=width,
                    )
                    vx = b.load(x[j * group + off], width=width)
                    if caps.has_fma:
                        accs[t] = b.fma(va, vx, accs[t], width=width)
                    else:
                        prod = b.mul(va, vx, width=width)
                        accs[t] = b.add(prod, accs[t], width=width,
                                        dst=accs[t])
            acc = accs[0]
            for t in range(1, k):
                acc = b.add(acc, accs[t], width=width)
            for _ in range(lanes - 1):
                acc = b.add(acc, acc, width=64)
            self._finish_row(b, y, i, row_lo, acc)

    def _build_col(self, b, a, x, y, n, row_lo, row_hi) -> None:
        """Column-major storage forces scalar element loads ``row_bytes``
        apart: the strided walk that ruins spatial locality."""
        k = self.accumulators
        row_bytes = 8 * n
        with b.loop(row_hi - row_lo, "i") as i:
            accs = b.regs(k)
            with b.loop(n // k, "j") as j:
                for t in range(k):
                    va = b.load(
                        a[j * (row_bytes * k) + i * 8
                          + (8 * row_lo + t * row_bytes)],
                        width=64,
                    )
                    vx = b.load(x[j * (8 * k) + 8 * t], width=64)
                    prod = b.mul(va, vx, width=64)
                    accs[t] = b.add(prod, accs[t], width=64, dst=accs[t])
            acc = accs[0]
            for t in range(1, k):
                acc = b.add(acc, accs[t], width=64)
            self._finish_row(b, y, i, row_lo, acc)

    @staticmethod
    def _finish_row(b, y, i, row_lo, acc) -> None:
        vy = b.load(y[i * 8 + 8 * row_lo], width=64)
        out = b.add(vy, acc, width=64)
        b.store(out, y[i * 8 + 8 * row_lo], width=64)

    # ------------------------------------------------------------------
    # ground truth
    # ------------------------------------------------------------------
    def flops(self, n: int) -> int:
        return 2 * n * n

    def expected_flops(self, n: int, caps: CodegenCaps, nranks: int = 1) -> int:
        k = self.accumulators
        if self.layout == "row":
            lanes = caps.lanes
            per_row = (k - 1) * lanes + (lanes - 1) + 1
        else:
            per_row = (k - 1) + 1
        return 2 * n * n + n * per_row

    def compulsory_bytes(self, n: int) -> int:
        return 8 * n * n + 8 * n + 16 * n  # A once, x once, y read+write

    def footprint_bytes(self, n: int) -> int:
        return 8 * n * n + 16 * n

    def validate_n(self, n: int, caps: CodegenCaps, nranks: int = 1) -> None:
        if n <= 0:
            raise ConfigurationError("dgemv: n must be positive")
        if n % nranks:
            raise ConfigurationError(f"dgemv: n={n} not divisible by {nranks} ranks")
        lanes = caps.lanes if self.layout == "row" else 1
        if n % (lanes * self.accumulators):
            raise ConfigurationError(
                f"dgemv: n={n} must divide into {self.accumulators} "
                f"accumulator streams of {lanes} lane(s)"
            )

    def describe(self) -> str:
        return f"dgemv ({self.layout}-major, y = A@x + y)"

    def __repr__(self) -> str:
        return f"Dgemv(layout={self.layout!r}, accumulators={self.accumulators})"
