"""Sparse matrix-vector multiply (CSR-style, fixed row degree).

SpMV is the classic low-intensity roofline subject: two flops per
stored nonzero, but every nonzero drags its value (8 B), its column
index (8 B), and a *gather* from the dense vector whose locality
depends entirely on the sparsity pattern.  The kernel uses the ISA's
:class:`~repro.isa.instructions.GatherLoad` with a deterministic
pseudo-random (LCG) banded pattern, so work and footprint are exact
while the x-gather exercises genuinely irregular access.

Layout (ELLPACK-like, fixed ``row_nnz`` nonzeros per row):

========  =======================  ===========================
buffer    size                     access pattern
========  =======================  ===========================
vals      ``8 * n * row_nnz``      unit-stride read
colidx    ``8 * n * row_nnz``      unit-stride read
x         ``8 * n``                gather (pattern-dependent)
y         ``8 * n``                unit-stride read+write
========  =======================  ===========================
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..isa.program import Program
from .base import CodegenCaps, Kernel, new_builder, partition_range


def _lcg_columns(n: int, row_nnz: int, bandwidth: int, seed: int):
    """Deterministic column indices for a square matrix: each row draws
    ``row_nnz`` columns from a band of ``bandwidth`` around the
    diagonal (wrapping)."""
    return _lcg_columns_rect(n, n, row_nnz, bandwidth, seed)


def _lcg_columns_rect(n: int, ncols: int, row_nnz: int, bandwidth: int,
                      seed: int):
    """Rectangular variant: rows spread their band centres across all
    ``ncols`` columns so a wide matrix really is gathered widely."""
    state = seed & 0x7FFFFFFF
    columns = []
    half = bandwidth // 2
    for row in range(n):
        centre = (row * ncols) // max(n, 1)
        for _ in range(row_nnz):
            state = (1103515245 * state + 12345) & 0x7FFFFFFF
            offset = state % max(bandwidth, 1) - half
            columns.append((centre + offset) % ncols)
    return columns


class Spmv(Kernel):
    """``y += A @ x`` with a fixed-degree synthetic sparse matrix.

    ``bandwidth`` controls gather locality: a narrow band keeps the
    x-gather cache-resident (SpMV behaves like a stream); a band wider
    than the cache makes every gather a potential miss.
    """

    name = "spmv"

    def __init__(self, row_nnz: int = 8, bandwidth: int = 512,
                 seed: int = 0xC0FFEE, cols: int = 0) -> None:
        """``cols`` widens the matrix (and the gathered ``x`` vector)
        beyond the row count — a rectangular ``n x cols`` operator.
        0 means square."""
        if row_nnz <= 0 or bandwidth <= 0:
            raise ConfigurationError("spmv needs positive row_nnz/bandwidth")
        if cols < 0:
            raise ConfigurationError("cols must be non-negative")
        self.row_nnz = row_nnz
        self.bandwidth = bandwidth
        self.seed = seed
        self.cols = cols

    def _ncols(self, n: int) -> int:
        return max(self.cols, n)

    def build(self, n: int, caps: CodegenCaps,
              rank: int = 0, nranks: int = 1) -> Program:
        self.validate_n(n, caps, nranks)
        lo, hi = partition_range(n, rank, nranks)
        k = self.row_nnz
        b = new_builder()
        ncols = self._ncols(n)
        vals = b.buffer("vals", 8 * n * k)
        colidx = b.buffer("colidx", 8 * n * k)
        x = b.buffer("x", 8 * ncols)
        y = b.buffer("y", 8 * n)
        columns = _lcg_columns_rect(n, ncols, k, min(self.bandwidth, ncols),
                                    self.seed)
        table = b.index_table("cols", [8 * c for c in columns])
        with b.loop(hi - lo, "row") as row:
            acc = b.reg()
            with b.loop(k, "j") as j:
                va = b.load(vals[row * (8 * k) + j * 8 + lo * 8 * k],
                            width=64)
                b.load(colidx[row * (8 * k) + j * 8 + lo * 8 * k], width=64)
                vx = b.gather(x, table[row * k + j * 1 + lo * k], width=64)
                prod = b.mul(va, vx, width=64)
                acc = b.add(prod, acc, width=64, dst=acc)
            vy = b.load(y[row * 8 + lo * 8], width=64)
            out = b.add(vy, acc, width=64)
            b.store(out, y[row * 8 + lo * 8], width=64)
        return b.build()

    # ------------------------------------------------------------------
    # ground truth
    # ------------------------------------------------------------------
    def flops(self, n: int) -> int:
        # 2 per nonzero plus the y accumulate per row
        return 2 * n * self.row_nnz + n

    def compulsory_bytes(self, n: int) -> int:
        # vals + colidx streamed once; the touched slice of x read once;
        # y read + written.  With a band narrower than the matrix, x is
        # only touched near the band centres (approximated as the lesser
        # of the full vector and nnz-driven coverage).
        x_touched = min(8 * self._ncols(n),
                        8 * n * self.row_nnz,
                        64 * n * self.row_nnz)
        return 16 * n * self.row_nnz + x_touched + 16 * n

    def footprint_bytes(self, n: int) -> int:
        return 16 * n * self.row_nnz + 8 * self._ncols(n) + 8 * n

    def validate_n(self, n: int, caps: CodegenCaps, nranks: int = 1) -> None:
        if n <= 0 or n % nranks:
            raise ConfigurationError(
                f"spmv: n={n} must divide into {nranks} rank(s)"
            )

    def describe(self) -> str:
        return (f"spmv (ELLPACK, {self.row_nnz} nnz/row, "
                f"band {self.bandwidth})")

    def __repr__(self) -> str:
        return f"Spmv(row_nnz={self.row_nnz}, bandwidth={self.bandwidth})"
