"""Kernel framework.

A kernel knows three things:

* how to *build* its ISA program for given codegen capabilities
  (SIMD width, FMA availability) and an optional thread partition,
* its exact analytic work ``W(n)`` in flops,
* its compulsory memory traffic (the cold-cache minimum ``Q``).

The analytic values are the ground truth the paper validates its
counter measurements against; the test suite holds every built program
to them exactly (``program.static_counts().flops == kernel.flops(n)``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import ConfigurationError
from ..isa.builder import ProgramBuilder
from ..isa.program import Program
from ..units import DOUBLE_BYTES


@dataclass(frozen=True)
class CodegenCaps:
    """What the target core lets the kernel generator use."""

    width_bits: int = 256
    has_fma: bool = False

    def __post_init__(self) -> None:
        if self.width_bits not in (64, 128, 256, 512):
            raise ConfigurationError(f"bad SIMD width {self.width_bits}")

    @property
    def lanes(self) -> int:
        """Doubles per vector register."""
        return self.width_bits // 64

    @property
    def vec_bytes(self) -> int:
        return self.width_bits // 8

    @classmethod
    def from_machine(cls, machine, width_bits: Optional[int] = None) -> "CodegenCaps":
        """Capabilities for a machine, optionally narrowed to a width."""
        ports = machine.ports
        width = width_bits or ports.max_simd_width
        if not ports.supports_width(width):
            raise ConfigurationError(
                f"{machine.spec.name} does not support {width}-bit SIMD"
            )
        return cls(width_bits=width, has_fma=ports.has_fma)


def partition_range(n: int, rank: int, nranks: int) -> Tuple[int, int]:
    """Contiguous static partition ``[lo, hi)`` of ``range(n)``.

    The remainder is spread over the first ranks, matching a static
    OpenMP schedule.
    """
    if nranks <= 0 or not 0 <= rank < nranks:
        raise ConfigurationError(f"bad partition rank {rank}/{nranks}")
    base = n // nranks
    extra = n % nranks
    lo = rank * base + min(rank, extra)
    hi = lo + base + (1 if rank < extra else 0)
    return lo, hi


class Kernel(ABC):
    """One measurable algorithm implementation."""

    #: registry identifier, e.g. ``"daxpy"``
    name: str = "abstract"

    # ------------------------------------------------------------------
    # program generation
    # ------------------------------------------------------------------
    @abstractmethod
    def build(self, n: int, caps: CodegenCaps,
              rank: int = 0, nranks: int = 1) -> Program:
        """Build the rank's program for problem size ``n``."""

    # ------------------------------------------------------------------
    # analytic ground truth
    # ------------------------------------------------------------------
    @abstractmethod
    def flops(self, n: int) -> int:
        """Exact flop count across all ranks."""

    @abstractmethod
    def compulsory_bytes(self, n: int) -> int:
        """Minimum memory traffic with a cold cache (compulsory misses
        plus unavoidable writebacks), across all ranks."""

    @abstractmethod
    def footprint_bytes(self, n: int) -> int:
        """Bytes of data the kernel touches (working-set size)."""

    def expected_flops(self, n: int, caps: CodegenCaps, nranks: int = 1) -> int:
        """Exact flops the *generated code* executes (across all ranks).

        Defaults to the mathematical :meth:`flops`; kernels whose codegen
        adds structural work (e.g. dgemv's reduction tree) override this.
        Counter validation compares measured W against this value — the
        implementation's flop count, exactly as the paper does.
        """
        return self.flops(n)

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------
    def operational_intensity(self, n: int) -> float:
        """The analytic cold-cache intensity ``W/Q`` in flops/byte."""
        return self.flops(n) / self.compulsory_bytes(n)

    def validate_n(self, n: int, caps: CodegenCaps, nranks: int = 1) -> None:
        """Reject sizes the generator cannot tile exactly."""
        if n <= 0:
            raise ConfigurationError(f"{self.name}: n must be positive")
        lanes = caps.lanes
        if (n // nranks) % lanes or n % nranks:
            raise ConfigurationError(
                f"{self.name}: n={n} must divide into {nranks} rank(s) of "
                f"whole {lanes}-lane vectors"
            )

    def describe(self) -> str:
        """One-line human description (reports, plot legends)."""
        return self.name

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def elements_bytes(n: int) -> int:
    """Size in bytes of ``n`` double-precision elements."""
    return n * DOUBLE_BYTES


def new_builder() -> ProgramBuilder:
    """A fresh builder (one per build call)."""
    return ProgramBuilder()
