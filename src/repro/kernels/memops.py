"""Pure data-movement kernels: memset, memcpy, read stream.

These carry **zero counted flops** — they are the substrate of the
bandwidth microbenchmarks, and they also demonstrate the methodology's
applicability limit the paper discusses: work measured via FP counters
says nothing about kernels whose work *is* data movement.

``memset``/``memcpy`` come in write-allocate and non-temporal variants;
the NT variants avoid read-for-ownership and are what achieve the
highest measured bandwidth (the paper's fastest bandwidth check is a
hand-written non-temporal memset).
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..isa.program import Program
from .base import CodegenCaps, Kernel, new_builder, partition_range


class _MemKernel(Kernel):
    """Shared scaffolding for flop-free streaming kernels.

    ``n`` counts 8-byte elements, keeping the size convention uniform
    with the FP kernels.
    """

    def flops(self, n: int) -> int:
        return 0

    def expected_flops(self, n: int, caps: CodegenCaps, nranks: int = 1) -> int:
        return 0

    def operational_intensity(self, n: int) -> float:
        raise ConfigurationError(
            f"{self.name} performs no counted flops; the FP-counter "
            "methodology does not apply (see paper's applicability notes)"
        )


class ReadStream(_MemKernel):
    """Load-only sweep (bandwidth 'read' check)."""

    name = "read"

    def build(self, n: int, caps: CodegenCaps,
              rank: int = 0, nranks: int = 1) -> Program:
        self.validate_n(n, caps, nranks)
        lo, hi = partition_range(n, rank, nranks)
        b = new_builder()
        x = b.buffer("x", 8 * n)
        width = caps.width_bits
        step = caps.vec_bytes
        base = lo * 8
        with b.loop((hi - lo) // caps.lanes) as i:
            b.load(x[i * step + base], width=width)
        return b.build()

    def compulsory_bytes(self, n: int) -> int:
        return 8 * n

    def footprint_bytes(self, n: int) -> int:
        return 8 * n


class Memset(_MemKernel):
    """Store-only sweep; NT variant skips the RFO read."""

    name = "memset"

    def __init__(self, nt_stores: bool = False) -> None:
        self.nt_stores = nt_stores
        self.name = "memset-nt" if nt_stores else "memset"

    def build(self, n: int, caps: CodegenCaps,
              rank: int = 0, nranks: int = 1) -> Program:
        self.validate_n(n, caps, nranks)
        lo, hi = partition_range(n, rank, nranks)
        b = new_builder()
        x = b.buffer("x", 8 * n)
        value = b.reg()
        width = caps.width_bits
        step = caps.vec_bytes
        base = lo * 8
        with b.loop((hi - lo) // caps.lanes) as i:
            b.store(value, x[i * step + base], width=width, nt=self.nt_stores)
        return b.build()

    def compulsory_bytes(self, n: int) -> int:
        return (8 if self.nt_stores else 16) * n

    def footprint_bytes(self, n: int) -> int:
        return 8 * n


class Memcpy(_MemKernel):
    """Load+store sweep; NT variant streams the destination."""

    name = "memcpy"

    def __init__(self, nt_stores: bool = False) -> None:
        self.nt_stores = nt_stores
        self.name = "memcpy-nt" if nt_stores else "memcpy"

    def build(self, n: int, caps: CodegenCaps,
              rank: int = 0, nranks: int = 1) -> Program:
        self.validate_n(n, caps, nranks)
        lo, hi = partition_range(n, rank, nranks)
        b = new_builder()
        src = b.buffer("src", 8 * n)
        dst = b.buffer("dst", 8 * n)
        width = caps.width_bits
        step = caps.vec_bytes
        base = lo * 8
        with b.loop((hi - lo) // caps.lanes) as i:
            v = b.load(src[i * step + base], width=width)
            b.store(v, dst[i * step + base], width=width, nt=self.nt_stores)
        return b.build()

    def compulsory_bytes(self, n: int) -> int:
        return (16 if self.nt_stores else 24) * n

    def footprint_bytes(self, n: int) -> int:
        return 16 * n
