"""BLAS-1 style streaming kernels (daxpy, triad, dot, scale, sum).

These are the memory-bound end of the paper's kernel spectrum.  Their
analytic work and traffic are exact, which is why the paper uses them to
validate counter-based W and Q measurement:

=========  =====================  ========  ==========================
kernel     operation              flops     compulsory bytes
=========  =====================  ========  ==========================
daxpy      y += alpha*x           2n        24n  (read x,y; write y)
triad      a = b + alpha*c        2n        32n  (read b,c; RFO+write a)
dot        s += x[i]*y[i]         2n        16n
scale      y = alpha*x            n         24n  (16n with NT stores)
sum        s += x[i]              n         8n
=========  =====================  ========  ==========================
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..isa.program import Program
from .base import CodegenCaps, Kernel, elements_bytes, new_builder, partition_range


class Daxpy(Kernel):
    """``y[i] += alpha * x[i]`` — the classic memory-bound BLAS-1 case."""

    name = "daxpy"

    def build(self, n: int, caps: CodegenCaps,
              rank: int = 0, nranks: int = 1) -> Program:
        self.validate_n(n, caps, nranks)
        lo, hi = partition_range(n, rank, nranks)
        b = new_builder()
        x = b.buffer("x", elements_bytes(n))
        y = b.buffer("y", elements_bytes(n))
        alpha = b.reg()
        width = caps.width_bits
        step = caps.vec_bytes
        base = lo * 8
        with b.loop((hi - lo) // caps.lanes) as i:
            vx = b.load(x[i * step + base], width=width)
            vy = b.load(y[i * step + base], width=width)
            if caps.has_fma:
                out = b.fma(alpha, vx, vy, width=width)
            else:
                t = b.mul(alpha, vx, width=width)
                out = b.add(t, vy, width=width)
            b.store(out, y[i * step + base], width=width)
        return b.build()

    def flops(self, n: int) -> int:
        return 2 * n

    def compulsory_bytes(self, n: int) -> int:
        return 24 * n  # read x + read y + write back y

    def footprint_bytes(self, n: int) -> int:
        return 16 * n

    def describe(self) -> str:
        return "daxpy: y += a*x"


class StreamTriad(Kernel):
    """``a[i] = b[i] + alpha * c[i]`` — STREAM triad, three arrays.

    The written array is not read first, so write-allocate caches incur
    read-for-ownership traffic; its compulsory traffic is 32 bytes per
    element, against daxpy's 24.
    """

    name = "triad"

    def __init__(self, nt_stores: bool = False) -> None:
        self.nt_stores = nt_stores

    def build(self, n: int, caps: CodegenCaps,
              rank: int = 0, nranks: int = 1) -> Program:
        self.validate_n(n, caps, nranks)
        lo, hi = partition_range(n, rank, nranks)
        b = new_builder()
        a = b.buffer("a", elements_bytes(n))
        bb = b.buffer("b", elements_bytes(n))
        c = b.buffer("c", elements_bytes(n))
        alpha = b.reg()
        width = caps.width_bits
        step = caps.vec_bytes
        base = lo * 8
        with b.loop((hi - lo) // caps.lanes) as i:
            vb = b.load(bb[i * step + base], width=width)
            vc = b.load(c[i * step + base], width=width)
            if caps.has_fma:
                out = b.fma(alpha, vc, vb, width=width)
            else:
                t = b.mul(alpha, vc, width=width)
                out = b.add(t, vb, width=width)
            b.store(out, a[i * step + base], width=width, nt=self.nt_stores)
        return b.build()

    def flops(self, n: int) -> int:
        return 2 * n

    def compulsory_bytes(self, n: int) -> int:
        if self.nt_stores:
            return 24 * n  # read b,c; stream a without RFO
        return 32 * n      # read b,c; RFO + write back a

    def footprint_bytes(self, n: int) -> int:
        return 24 * n

    def describe(self) -> str:
        suffix = " (NT stores)" if self.nt_stores else ""
        return f"triad: a = b + alpha*c{suffix}"


class Dot(Kernel):
    """``s = sum(x[i] * y[i])`` — a reduction with a carried chain.

    ``accumulators`` controls how many independent partial sums the
    generated code keeps; 1 exposes the full FP latency (the ablation
    experiment sweeps this), 8 reaches issue throughput.
    """

    name = "dot"

    def __init__(self, accumulators: int = 8) -> None:
        if accumulators <= 0:
            raise ConfigurationError("need at least one accumulator")
        self.accumulators = accumulators

    def build(self, n: int, caps: CodegenCaps,
              rank: int = 0, nranks: int = 1) -> Program:
        self.validate_n(n, caps, nranks)
        lo, hi = partition_range(n, rank, nranks)
        local = hi - lo
        k = self.accumulators
        vectors = local // caps.lanes
        if vectors % k:
            raise ConfigurationError(
                f"dot: {vectors} vectors not divisible by {k} accumulators"
            )
        b = new_builder()
        x = b.buffer("x", elements_bytes(n))
        y = b.buffer("y", elements_bytes(n))
        accs = b.regs(k)
        width = caps.width_bits
        step = caps.vec_bytes
        base = lo * 8
        with b.loop(vectors // k) as i:
            for j in range(k):
                off = i * (step * k) + (base + j * step)
                vx = b.load(x[off], width=width)
                vy = b.load(y[off], width=width)
                if caps.has_fma:
                    accs[j] = b.fma(vx, vy, accs[j], width=width)
                else:
                    t = b.mul(vx, vy, width=width)
                    accs[j] = b.add(t, accs[j], width=width, dst=accs[j])
        return b.build()

    def flops(self, n: int) -> int:
        return 2 * n

    def compulsory_bytes(self, n: int) -> int:
        return 16 * n

    def footprint_bytes(self, n: int) -> int:
        return 16 * n

    def validate_n(self, n: int, caps: CodegenCaps, nranks: int = 1) -> None:
        super().validate_n(n, caps, nranks)
        if (n // nranks) % (caps.lanes * self.accumulators):
            raise ConfigurationError(
                f"dot: per-rank n must divide into {self.accumulators} "
                f"accumulator streams of {caps.lanes} lanes"
            )

    def describe(self) -> str:
        return f"dot product ({self.accumulators} accumulators)"


class StridedSum(Kernel):
    """``s += x[i * stride]`` — a sparse walk that skips cache lines.

    With ``stride_elems >= 16`` (two lines) the next-line prefetcher
    fetches a neighbour line on every miss that the kernel never
    touches: the cleanest demonstration of genuine prefetch overfetch
    (experiment F9).  ``n`` counts *touched* elements; the footprint is
    ``8 * n * stride_elems`` bytes.
    """

    name = "strided-sum"

    def __init__(self, stride_elems: int = 16, accumulators: int = 4) -> None:
        if stride_elems < 1:
            raise ConfigurationError("stride must be at least one element")
        if accumulators <= 0:
            raise ConfigurationError("need at least one accumulator")
        self.stride_elems = stride_elems
        self.accumulators = accumulators

    def build(self, n: int, caps: CodegenCaps,
              rank: int = 0, nranks: int = 1) -> Program:
        self.validate_n(n, caps, nranks)
        lo, hi = partition_range(n, rank, nranks)
        k = self.accumulators
        stride = 8 * self.stride_elems
        b = new_builder()
        x = b.buffer("x", n * stride)
        accs = b.regs(k)
        base = lo * stride
        with b.loop((hi - lo) // k) as i:
            for j in range(k):
                vx = b.load(x[i * (stride * k) + (base + j * stride)],
                            width=64)
                accs[j] = b.add(accs[j], vx, width=64, dst=accs[j])
        return b.build()

    def flops(self, n: int) -> int:
        return n

    def compulsory_bytes(self, n: int) -> int:
        if self.stride_elems >= 8:
            return 64 * n          # one distinct line per element
        lines = (n * self.stride_elems * 8 + 63) // 64
        return 64 * lines

    def footprint_bytes(self, n: int) -> int:
        return 8 * n * self.stride_elems

    def validate_n(self, n: int, caps: CodegenCaps, nranks: int = 1) -> None:
        if n <= 0 or n % nranks or (n // nranks) % self.accumulators:
            raise ConfigurationError(
                f"strided-sum: n={n} must divide into {nranks} rank(s) of "
                f"{self.accumulators} accumulator streams"
            )

    def describe(self) -> str:
        return (f"strided sum (every {self.stride_elems} elements, "
                f"{self.accumulators} accumulators)")


class Scale(Kernel):
    """``y[i] = alpha * x[i]`` — one flop per element."""

    name = "scale"

    def __init__(self, nt_stores: bool = False) -> None:
        self.nt_stores = nt_stores

    def build(self, n: int, caps: CodegenCaps,
              rank: int = 0, nranks: int = 1) -> Program:
        self.validate_n(n, caps, nranks)
        lo, hi = partition_range(n, rank, nranks)
        b = new_builder()
        x = b.buffer("x", elements_bytes(n))
        y = b.buffer("y", elements_bytes(n))
        alpha = b.reg()
        width = caps.width_bits
        step = caps.vec_bytes
        base = lo * 8
        with b.loop((hi - lo) // caps.lanes) as i:
            vx = b.load(x[i * step + base], width=width)
            out = b.mul(alpha, vx, width=width)
            b.store(out, y[i * step + base], width=width, nt=self.nt_stores)
        return b.build()

    def flops(self, n: int) -> int:
        return n

    def compulsory_bytes(self, n: int) -> int:
        return (16 if self.nt_stores else 24) * n

    def footprint_bytes(self, n: int) -> int:
        return 16 * n

    def describe(self) -> str:
        return "scale: y = a*x" + (" (NT stores)" if self.nt_stores else "")


class SumReduction(Kernel):
    """``s = sum(x[i])`` — the paper's counter-validation footnote kernel
    (simple enough that W and Q are beyond doubt)."""

    name = "sum"

    def __init__(self, accumulators: int = 4) -> None:
        if accumulators <= 0:
            raise ConfigurationError("need at least one accumulator")
        self.accumulators = accumulators

    def build(self, n: int, caps: CodegenCaps,
              rank: int = 0, nranks: int = 1) -> Program:
        self.validate_n(n, caps, nranks)
        lo, hi = partition_range(n, rank, nranks)
        k = self.accumulators
        vectors = (hi - lo) // caps.lanes
        if vectors % k:
            raise ConfigurationError(
                f"sum: {vectors} vectors not divisible by {k} accumulators"
            )
        b = new_builder()
        x = b.buffer("x", elements_bytes(n))
        accs = b.regs(k)
        width = caps.width_bits
        step = caps.vec_bytes
        base = lo * 8
        with b.loop(vectors // k) as i:
            for j in range(k):
                vx = b.load(x[i * (step * k) + (base + j * step)], width=width)
                accs[j] = b.add(accs[j], vx, width=width, dst=accs[j])
        return b.build()

    def flops(self, n: int) -> int:
        return n

    def compulsory_bytes(self, n: int) -> int:
        return 8 * n

    def footprint_bytes(self, n: int) -> int:
        return 8 * n

    def validate_n(self, n: int, caps: CodegenCaps, nranks: int = 1) -> None:
        super().validate_n(n, caps, nranks)
        if (n // nranks) % (caps.lanes * self.accumulators):
            raise ConfigurationError(
                f"sum: per-rank n must divide into {self.accumulators} "
                f"accumulator streams of {caps.lanes} lanes"
            )

    def describe(self) -> str:
        return f"sum reduction ({self.accumulators} accumulators)"
