"""BLAS-3: dense matrix-matrix multiply (dgemm) in three implementations.

dgemm is the compute-bound anchor of the paper's kernel set: O(n^3)
flops over O(n^2) data.  *How close* an implementation gets to the
compute roof depends entirely on its loop order and blocking, which is
exactly the story the roofline plot tells:

* ``naive``   — ijk dot-product form; the B operand is walked down a
  column (stride = one full row), so every inner iteration touches a
  new cache line and the kernel behaves like a memory-bound code until
  the column window fits in cache.
* ``ikj``     — saxpy form; all three operands stream at unit stride,
  but C is re-read/re-written n times.
* ``blocked`` — ikj with i/k tiling so the C row slice and B block stay
  cache-resident; fixes the traffic but stays load/store-port bound.
* ``tiled``   — register-tiled outer-product micro-kernel (the MKL
  analogue): an ``mu x nu``-vector C tile lives in registers across the
  k loop, so each loaded operand feeds ``mu*nu`` FP operations and the
  kernel becomes FP-issue bound, approaching the compute ceiling.

All variants execute exactly ``2 n^3`` flops.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..isa.program import Program
from .base import CodegenCaps, Kernel, new_builder, partition_range

_VARIANTS = ("naive", "ikj", "blocked", "tiled")


class Dgemm(Kernel):
    """``C += A @ B`` with ``n x n`` row-major operands."""

    def __init__(self, variant: str = "tiled", unroll: int = 4,
                 block_i: int = 8, block_k: int = 16,
                 mu: int = 4, nu: int = 2) -> None:
        if variant not in _VARIANTS:
            raise ConfigurationError(f"dgemm variant must be one of {_VARIANTS}")
        if unroll <= 0 or block_i <= 0 or block_k <= 0:
            raise ConfigurationError("dgemm parameters must be positive")
        if mu <= 0 or nu <= 0 or mu * nu > 16:
            raise ConfigurationError("register tile mu*nu must be in [1, 16]")
        self.variant = variant
        self.unroll = unroll
        self.block_i = block_i
        self.block_k = block_k
        self.mu = mu
        self.nu = nu
        self.name = f"dgemm-{variant}"

    # ------------------------------------------------------------------
    # codegen
    # ------------------------------------------------------------------
    def build(self, n: int, caps: CodegenCaps,
              rank: int = 0, nranks: int = 1) -> Program:
        self.validate_n(n, caps, nranks)
        row_lo, row_hi = partition_range(n, rank, nranks)
        b = new_builder()
        a = b.buffer("A", 8 * n * n)
        bm = b.buffer("B", 8 * n * n)
        c = b.buffer("C", 8 * n * n)
        if self.variant == "naive":
            self._build_naive(b, a, bm, c, n, caps, row_lo, row_hi)
        elif self.variant == "ikj":
            self._build_ikj(b, a, bm, c, n, caps, row_lo, row_hi)
        elif self.variant == "blocked":
            self._build_blocked(b, a, bm, c, n, caps, row_lo, row_hi)
        else:
            self._build_tiled(b, a, bm, c, n, caps, row_lo, row_hi)
        return b.build()

    def _build_naive(self, b, a, bm, c, n, caps, row_lo, row_hi) -> None:
        """ijk: C[i, jv] = sum_k A[i,k] * B[k, jv]; B walked by column."""
        lanes = caps.lanes
        width = caps.width_bits
        u = self.unroll
        row = 8 * n
        with b.loop(row_hi - row_lo, "i") as i:
            with b.loop(n // lanes, "j") as j:
                accs = b.regs(u)
                cv = b.load(c[i * row + j * (8 * lanes) + row_lo * row],
                            width=width)
                with b.loop(n // u, "k") as k:
                    for t in range(u):
                        va = b.load(
                            a[i * row + k * (8 * u) + (row_lo * row + 8 * t)],
                            width=64,
                        )
                        vb = b.load(
                            bm[k * (row * u) + j * (8 * lanes) + t * row],
                            width=width,
                        )
                        if caps.has_fma:
                            accs[t] = b.fma(va, vb, accs[t], width=width)
                        else:
                            prod = b.mul(va, vb, width=width)
                            accs[t] = b.add(prod, accs[t], width=width,
                                            dst=accs[t])
                out = cv
                for t in range(u):
                    out = b.add(out, accs[t], width=width)
                b.store(out, c[i * row + j * (8 * lanes) + row_lo * row],
                        width=width)

    def _build_ikj(self, b, a, bm, c, n, caps, row_lo, row_hi) -> None:
        """ikj: C[i,:] += A[i,k] * B[k,:]; unit stride everywhere."""
        lanes = caps.lanes
        width = caps.width_bits
        row = 8 * n
        with b.loop(row_hi - row_lo, "i") as i:
            with b.loop(n, "k") as k:
                va = b.load(a[i * row + k * 8 + row_lo * row], width=64)
                with b.loop(n // lanes, "j") as j:
                    vb = b.load(bm[k * row + j * (8 * lanes)], width=width)
                    cv = b.load(c[i * row + j * (8 * lanes) + row_lo * row],
                                width=width)
                    if caps.has_fma:
                        out = b.fma(va, vb, cv, width=width)
                    else:
                        prod = b.mul(va, vb, width=width)
                        out = b.add(prod, cv, width=width)
                    b.store(out, c[i * row + j * (8 * lanes) + row_lo * row],
                            width=width)

    def _build_blocked(self, b, a, bm, c, n, caps, row_lo, row_hi) -> None:
        """ikj with i/k tiling: B block rows and the C row slice stay hot."""
        lanes = caps.lanes
        width = caps.width_bits
        bi, bk = self.block_i, self.block_k
        row = 8 * n
        rows = row_hi - row_lo
        with b.loop(rows // bi, "it") as it:
            with b.loop(n // bk, "kt") as kt:
                with b.loop(bi, "i") as i:
                    with b.loop(bk, "k") as k:
                        va = b.load(
                            a[it * (row * bi) + i * row
                              + kt * (8 * bk) + k * 8 + row_lo * row],
                            width=64,
                        )
                        with b.loop(n // lanes, "j") as j:
                            vb = b.load(
                                bm[kt * (row * bk) + k * row
                                   + j * (8 * lanes)],
                                width=width,
                            )
                            cv = b.load(
                                c[it * (row * bi) + i * row
                                  + j * (8 * lanes) + row_lo * row],
                                width=width,
                            )
                            if caps.has_fma:
                                out = b.fma(va, vb, cv, width=width)
                            else:
                                prod = b.mul(va, vb, width=width)
                                out = b.add(prod, cv, width=width)
                            b.store(
                                out,
                                c[it * (row * bi) + i * row
                                  + j * (8 * lanes) + row_lo * row],
                                width=width,
                            )

    def _build_tiled(self, b, a, bm, c, n, caps, row_lo, row_hi) -> None:
        """Register-tiled micro-kernel: an mu x nu C tile stays in
        registers across the whole k loop, loaded once and stored once.
        Each A scalar feeds nu FP ops and each B vector feeds mu, which
        is what lifts the kernel off the load/store-port bound."""
        lanes = caps.lanes
        width = caps.width_bits
        mu, nu = self.mu, self.nu
        row = 8 * n
        tile_cols = nu * lanes
        # jt outermost: the B panel (n x tile_cols) is reused across all
        # row tiles and stays cache-resident, amortising its traffic
        with b.loop(n // tile_cols, "jt") as jt:
            with b.loop((row_hi - row_lo) // mu, "it") as it:
                accs = []
                for r in range(mu):
                    for v in range(nu):
                        accs.append(b.load(
                            c[it * (row * mu) + jt * (8 * tile_cols)
                              + (row_lo * row + r * row + 8 * v * lanes)],
                            width=width,
                        ))
                with b.loop(n, "k") as k:
                    avals = [
                        b.load(a[it * (row * mu) + k * 8
                                 + (row_lo * row + r * row)], width=64)
                        for r in range(mu)
                    ]
                    bvals = [
                        b.load(bm[k * row + jt * (8 * tile_cols)
                                  + 8 * v * lanes], width=width)
                        for v in range(nu)
                    ]
                    for r in range(mu):
                        for v in range(nu):
                            acc = accs[r * nu + v]
                            if caps.has_fma:
                                b.fma(avals[r], bvals[v], acc, width=width)
                            else:
                                prod = b.mul(avals[r], bvals[v], width=width)
                                b.add(prod, acc, width=width, dst=acc)
                for r in range(mu):
                    for v in range(nu):
                        b.store(
                            accs[r * nu + v],
                            c[it * (row * mu) + jt * (8 * tile_cols)
                              + (row_lo * row + r * row + 8 * v * lanes)],
                            width=width,
                        )

    # ------------------------------------------------------------------
    # ground truth
    # ------------------------------------------------------------------
    def flops(self, n: int) -> int:
        return 2 * n * n * n

    def expected_flops(self, n: int, caps: CodegenCaps, nranks: int = 1) -> int:
        if self.variant == "naive":
            # the accumulator-combine tree adds `unroll` vector adds
            # per C tile
            tiles = n * (n // caps.lanes)
            return 2 * n * n * n + tiles * self.unroll * caps.lanes
        return 2 * n * n * n

    def compulsory_bytes(self, n: int) -> int:
        return 8 * n * n * 4  # A + B read, C read + write back

    def footprint_bytes(self, n: int) -> int:
        return 24 * n * n

    def validate_n(self, n: int, caps: CodegenCaps, nranks: int = 1) -> None:
        if n <= 0:
            raise ConfigurationError("dgemm: n must be positive")
        if n % nranks:
            raise ConfigurationError(f"dgemm: n={n} not divisible by {nranks} ranks")
        rows = n // nranks
        if n % caps.lanes:
            raise ConfigurationError(f"dgemm: n={n} not a multiple of SIMD lanes")
        if self.variant == "naive" and n % self.unroll:
            raise ConfigurationError(
                f"dgemm-naive: n={n} not a multiple of unroll={self.unroll}"
            )
        if self.variant == "blocked":
            if rows % self.block_i or n % self.block_k:
                raise ConfigurationError(
                    f"dgemm-blocked: n={n} must tile into "
                    f"{self.block_i}x{self.block_k} blocks per rank"
                )
        if self.variant == "tiled":
            if rows % self.mu or n % (self.nu * caps.lanes):
                raise ConfigurationError(
                    f"dgemm-tiled: n={n} must tile into {self.mu}x{self.nu}"
                    f"-vector register tiles per rank"
                )

    def describe(self) -> str:
        return f"dgemm ({self.variant}, C += A@B)"

    def __repr__(self) -> str:
        return f"Dgemm(variant={self.variant!r})"
