"""1-D 3-point stencil (extension kernel).

``y[i] = c0*x[i-1] + c1*x[i] + c2*x[i+1]`` — 5 flops per element over a
streaming footprint, landing between daxpy and dgemv on the intensity
axis.  Its shifted loads are deliberately unaligned, exercising the
simulator's split-line handling; the input buffer carries one vector of
halo on each side so every access stays in bounds.
"""

from __future__ import annotations

from ..isa.program import Program
from .base import CodegenCaps, Kernel, elements_bytes, new_builder, partition_range


class Stencil3(Kernel):
    """Three-point stencil with constant coefficients."""

    name = "stencil3"

    def build(self, n: int, caps: CodegenCaps,
              rank: int = 0, nranks: int = 1) -> Program:
        self.validate_n(n, caps, nranks)
        lo, hi = partition_range(n, rank, nranks)
        width = caps.width_bits
        lanes = caps.lanes
        step = caps.vec_bytes
        b = new_builder()
        halo = step  # one vector of halo on each side
        x = b.buffer("x", elements_bytes(n) + 2 * halo)
        y = b.buffer("y", elements_bytes(n))
        c0, c1, c2 = b.regs(3)
        base = lo * 8 + halo
        with b.loop((hi - lo) // lanes) as i:
            left = b.load(x[i * step + (base - 8)], width=width)
            mid = b.load(x[i * step + base], width=width)
            right = b.load(x[i * step + (base + 8)], width=width)
            acc = b.mul(c0, left, width=width)
            if caps.has_fma:
                acc = b.fma(c1, mid, acc, width=width)
                acc = b.fma(c2, right, acc, width=width)
            else:
                t1 = b.mul(c1, mid, width=width)
                acc = b.add(acc, t1, width=width)
                t2 = b.mul(c2, right, width=width)
                acc = b.add(acc, t2, width=width)
            b.store(acc, y[i * step + lo * 8], width=width)
        return b.build()

    def flops(self, n: int) -> int:
        return 5 * n

    def compulsory_bytes(self, n: int) -> int:
        return 8 * n + 16 * n  # x streamed once, y RFO + write back

    def footprint_bytes(self, n: int) -> int:
        return 16 * n

    def describe(self) -> str:
        return "3-point stencil: y = c0*x[-1] + c1*x[0] + c2*x[+1]"
