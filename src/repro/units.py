"""Unit constants, conversions, and human-readable formatting.

The roofline methodology juggles three axes — flops, bytes, and seconds —
and the paper reports everything in flops/cycle, GB/s, and flops/byte.
This module centralises the conversions so no magic constants leak into
the rest of the code base.
"""

from __future__ import annotations

import math

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

KB = 1000
MB = 1000 * KB
GB = 1000 * MB

DOUBLE_BYTES = 8
SINGLE_BYTES = 4
CACHE_LINE_BYTES = 64
PAGE_BYTES = 4096


def giga(value: float) -> float:
    """Scale a raw per-second quantity to its Giga- representation."""
    return value / 1e9


def format_bytes(n: float) -> str:
    """Render a byte count with a binary suffix, e.g. ``'2.5 MiB'``."""
    if n < 0:
        return "-" + format_bytes(-n)
    for suffix, scale in (("GiB", GIB), ("MiB", MIB), ("KiB", KIB)):
        if n >= scale:
            return f"{n / scale:.2f} {suffix}"
    return f"{n:.0f} B"


def format_flops(flops_per_second: float) -> str:
    """Render a flop rate, e.g. ``'12.80 Gflop/s'``."""
    if flops_per_second >= 1e9:
        return f"{flops_per_second / 1e9:.2f} Gflop/s"
    if flops_per_second >= 1e6:
        return f"{flops_per_second / 1e6:.2f} Mflop/s"
    return f"{flops_per_second:.1f} flop/s"


def format_bandwidth(bytes_per_second: float) -> str:
    """Render a bandwidth, e.g. ``'38.40 GB/s'`` (decimal, as the paper)."""
    if bytes_per_second >= 1e9:
        return f"{bytes_per_second / 1e9:.2f} GB/s"
    if bytes_per_second >= 1e6:
        return f"{bytes_per_second / 1e6:.2f} MB/s"
    return f"{bytes_per_second:.1f} B/s"


def format_time(seconds: float) -> str:
    """Render a duration with an adaptive unit."""
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f} ms"
    if seconds >= 1e-6:
        return f"{seconds * 1e6:.3f} us"
    return f"{seconds * 1e9:.1f} ns"


def format_intensity(flops_per_byte: float) -> str:
    """Render an operational intensity, e.g. ``'0.083 F/B'``."""
    return f"{flops_per_byte:.3g} F/B"


def is_power_of_two(n: int) -> bool:
    """True when ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def log2_int(n: int) -> int:
    """Exact integer log2; raises ``ValueError`` for non powers of two."""
    if not is_power_of_two(n):
        raise ValueError(f"{n} is not a positive power of two")
    return n.bit_length() - 1


def round_up(value: int, multiple: int) -> int:
    """Round ``value`` up to the nearest ``multiple``."""
    if multiple <= 0:
        raise ValueError("multiple must be positive")
    return ((value + multiple - 1) // multiple) * multiple


def round_to(value: int, multiple: int) -> int:
    """Round ``value`` to the nearest positive multiple of ``multiple``."""
    return max(multiple, int(round(value / multiple)) * multiple)


def geometric_sizes(lo: int, hi: int, per_decade: int = 4) -> list:
    """Geometrically spaced integer sizes in ``[lo, hi]``, inclusive.

    Used by experiment sweeps to sample problem sizes evenly on the
    log axis of the roofline plot.
    """
    if lo <= 0 or hi < lo:
        raise ValueError("need 0 < lo <= hi")
    sizes = []
    ratio = 10.0 ** (1.0 / per_decade)
    value = float(lo)
    while value <= hi * 1.0000001:
        size = int(round(value))
        if not sizes or size > sizes[-1]:
            sizes.append(size)
        value *= ratio
    if sizes[-1] != hi:
        sizes.append(hi)
    return sizes


def pow2_sizes(lo_exp: int, hi_exp: int, step: int = 1) -> list:
    """Powers of two ``2**lo_exp .. 2**hi_exp`` with an exponent step."""
    if hi_exp < lo_exp:
        raise ValueError("hi_exp must be >= lo_exp")
    return [2 ** e for e in range(lo_exp, hi_exp + 1, step)]


def mean(values) -> float:
    """Arithmetic mean of a non-empty sequence."""
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def median(values) -> float:
    """Median of a non-empty sequence."""
    values = sorted(values)
    if not values:
        raise ValueError("median of empty sequence")
    mid = len(values) // 2
    if len(values) % 2:
        return float(values[mid])
    return (values[mid - 1] + values[mid]) / 2.0


def geomean(values) -> float:
    """Geometric mean of a non-empty sequence of positive values."""
    values = list(values)
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
