"""Work (W) measurement: flops from the FP instruction counters.

The paper derives flops by multiplying each FP event by its vector
width (lanes).  FMA needs no special factor because a retired FMA bumps
the counter twice — the behaviour the paper verifies with a hand-
written FMA-vs-ADD microbenchmark (reproduced in our test suite).
"""

from __future__ import annotations

from typing import Tuple

from ..pmu.events import FP_EVENT_LANES_F32, FP_EVENT_LANES_F64
from ..pmu.perf import PerfSession

#: the event set a work measurement programs (double precision)
WORK_EVENTS_F64: Tuple[str, ...] = tuple(e for e, _ in FP_EVENT_LANES_F64)
WORK_EVENTS_F32: Tuple[str, ...] = tuple(e for e, _ in FP_EVENT_LANES_F32)
WORK_EVENTS: Tuple[str, ...] = WORK_EVENTS_F64 + WORK_EVENTS_F32


def flops_from_session(session: PerfSession) -> float:
    """Counted flops over a closed session window (all monitored cores)."""
    total = 0.0
    for event_id, lanes in FP_EVENT_LANES_F64 + FP_EVENT_LANES_F32:
        if event_id in session.core_events:
            total += lanes * session.core_delta(event_id)
    return total


def flops_breakdown(session: PerfSession) -> dict:
    """Per-event counted flops (diagnostics for validation reports)."""
    breakdown = {}
    for event_id, lanes in FP_EVENT_LANES_F64 + FP_EVENT_LANES_F32:
        if event_id in session.core_events:
            delta = session.core_delta(event_id)
            if delta:
                breakdown[event_id] = lanes * delta
    return breakdown
