"""Small statistics helpers for repeated measurements.

The paper reports averages over repeated executions; we keep the median
(robust against a polluted first repetition) plus a spread diagnostic
so experiments can flag unstable measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import MeasurementError
from ..units import mean, median


@dataclass(frozen=True)
class Summary:
    """Median-centred summary of one measured quantity."""

    #: median across repetitions — the reported value (robust against a
    #: polluted first repetition)
    median: float
    #: arithmetic mean across repetitions (sensitive to outliers; kept
    #: for comparison against the paper's averaged numbers)
    mean: float
    #: smallest repetition value observed
    minimum: float
    #: largest repetition value observed
    maximum: float
    #: number of repetitions summarised
    count: int

    @property
    def spread(self) -> float:
        """Relative spread (max-min over median); 0 for constants."""
        if self.median == 0:
            return 0.0
        return (self.maximum - self.minimum) / abs(self.median)


def summarize(values: Sequence[float]) -> Summary:
    """Summarise a non-empty sequence of repetition values."""
    values = [float(v) for v in values]
    if not values:
        raise MeasurementError("no repetitions to summarise")
    return Summary(
        median=median(values),
        mean=mean(values),
        minimum=min(values),
        maximum=max(values),
        count=len(values),
    )


def relative_error(measured: float, expected: float) -> float:
    """Signed relative error of ``measured`` against ``expected``."""
    if expected == 0:
        raise MeasurementError("relative error undefined for zero expectation")
    return (measured - expected) / expected
