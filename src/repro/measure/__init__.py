"""Measurement methodology: protocols, W/Q/T drivers, and the runner
implementing the paper's two-run subtraction discipline."""

from .explain import ExecutionReport, explain_kernel, report_from_result
from .protocol import ColdCache, Protocol, WarmCache, make_protocol
from .runner import Measurement, build_init_program, measure_kernel, measure_sweep
from .stats import Summary, relative_error, summarize
from .traffic import TRAFFIC_EVENTS, bytes_from_session, read_write_bytes
from .work import (
    WORK_EVENTS,
    WORK_EVENTS_F32,
    WORK_EVENTS_F64,
    flops_breakdown,
    flops_from_session,
)

__all__ = [
    "ColdCache",
    "ExecutionReport",
    "Measurement",
    "Protocol",
    "Summary",
    "TRAFFIC_EVENTS",
    "WORK_EVENTS",
    "WORK_EVENTS_F32",
    "WORK_EVENTS_F64",
    "WarmCache",
    "build_init_program",
    "bytes_from_session",
    "explain_kernel",
    "report_from_result",
    "flops_breakdown",
    "flops_from_session",
    "make_protocol",
    "measure_kernel",
    "measure_sweep",
    "read_write_bytes",
    "relative_error",
    "summarize",
]
