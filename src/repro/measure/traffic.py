"""Memory-traffic (Q) measurement: bytes from the IMC CAS counters.

Q is the hard quantity of the methodology: cache-level events
undercount (prefetchers fetch behind their back), so the paper counts
raw 64-byte CAS transfers at the memory controller.  The controller
sees the whole platform, hence the caller must apply the two-run
subtraction (:mod:`repro.measure.runner` does).
"""

from __future__ import annotations

from typing import Tuple

from ..pmu.perf import PerfSession
from ..units import CACHE_LINE_BYTES

#: the event set a traffic measurement programs
TRAFFIC_EVENTS: Tuple[str, ...] = ("imc_cas_reads", "imc_cas_writes")


def bytes_from_session(session: PerfSession) -> float:
    """Total DRAM bytes moved during a closed session window."""
    lines = session.uncore_delta("imc_cas_reads") + session.uncore_delta(
        "imc_cas_writes"
    )
    return float(lines * CACHE_LINE_BYTES)


def read_write_bytes(session: PerfSession) -> Tuple[float, float]:
    """(read bytes, write bytes) over a closed session window."""
    return (
        float(session.uncore_delta("imc_cas_reads") * CACHE_LINE_BYTES),
        float(session.uncore_delta("imc_cas_writes") * CACHE_LINE_BYTES),
    )
