"""Cache-state protocols: cold and warm measurements.

The paper measures every kernel under two regimes:

* **cold** — caches are invalidated before each measured execution, so
  the kernel pays all compulsory misses.  The genuine method (and our
  default) sweeps a buffer larger than the aggregate cache capacity
  through the hierarchy, exactly like the paper's cache-buster; a cheap
  ``drop`` mode simply clears the simulated caches for fast tests.
* **warm** — the kernel runs unmeasured first, so whatever fits in
  cache stays resident and measured traffic drops (intensity rises).

Protocols are driven *inside* the measurement session: the overhead
(subtraction) run executes the same protocol without the measured
kernel, so protocol-induced counter pollution cancels — the paper's
two-run discipline.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict

from ..errors import MeasurementError
from ..isa.builder import ProgramBuilder


class Protocol(ABC):
    """Cache-state discipline applied before each measured execution."""

    name = "abstract"

    @abstractmethod
    def prepare(self, machine, run_kernel: Callable[[], object]) -> None:
        """Put the machine's caches in the protocol's state.

        ``run_kernel`` executes one unmeasured kernel pass (used by the
        warm protocol; cold protocols ignore it).
        """


class ColdCache(Protocol):
    """Invalidate before measuring.

    ``method='sweep'`` writes a buffer twice the aggregate cache size
    through the hierarchy (the honest buster); ``method='drop'`` clears
    the simulated caches directly (fast, for tests).
    """

    name = "cold"

    def __init__(self, method: str = "sweep") -> None:
        if method not in ("sweep", "drop"):
            raise MeasurementError(f"unknown cold method {method!r}")
        self.method = method
        self._busters: Dict[int, object] = {}

    def prepare(self, machine, run_kernel: Callable[[], object]) -> None:
        if self.method == "drop":
            machine.bust_caches()
            return
        loaded = self._buster_for(machine)
        machine.run(loaded, core_id=0)
        # training state gathered while busting would leak into the
        # measured run; hardware gets this for free because the buster's
        # pages differ from the kernel's
        for engines in machine.hierarchy._prefetchers:
            for engine in engines:
                engine.reset()

    def _buster_for(self, machine):
        key = id(machine)
        if key not in self._busters:
            size = 2 * machine.hierarchy.total_cache_bytes()
            line = machine.spec.hierarchy.line_bytes
            b = ProgramBuilder()
            buf = b.buffer("buster", size)
            # a *read* sweep: fills every set with clean unrelated lines,
            # so evicting them during the measured kernel costs no
            # writeback traffic (a store sweep would leave the caches
            # dirty and pollute the kernel's measured Q)
            with b.loop(size // line) as i:
                b.load(buf[i * line], width=64)
            self._busters[key] = machine.load(b.build())
        return self._busters[key]


class WarmCache(Protocol):
    """Run the kernel unmeasured ``warmups`` times before measuring."""

    name = "warm"

    def __init__(self, warmups: int = 1) -> None:
        if warmups < 1:
            raise MeasurementError("warm protocol needs at least one warmup")
        self.warmups = warmups

    def prepare(self, machine, run_kernel: Callable[[], object]) -> None:
        for _ in range(self.warmups):
            run_kernel()


def make_protocol(spec) -> Protocol:
    """Coerce ``'cold'``/``'warm'``/a :class:`Protocol` to a protocol."""
    if isinstance(spec, Protocol):
        return spec
    if spec == "cold":
        return ColdCache()
    if spec == "warm":
        return WarmCache()
    raise MeasurementError(f"unknown protocol {spec!r}")
