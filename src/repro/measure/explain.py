"""Execution explanation: *why* a kernel runs at the speed it does.

The roofline says how far a kernel is from its bound; this report says
which bound.  Every phase (innermost-loop execution) carries its cycle
breakdown from the timing model; aggregating them attributes the
kernel's runtime to FP issue, load/store ports, dependency chains,
cache-level bandwidths, DRAM bandwidth, and exposed latency — the
machine-checkable version of the judgements the paper draws by eye
("NCHW16C is compute friendly", "Winograd has headroom").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..cpu.core import ExecutionResult
from ..kernels.base import CodegenCaps, Kernel
from ..machine.machine import Machine
from ..units import format_bytes, format_time
from .protocol import make_protocol

_BOUND_FIELDS = (
    "fp_issue",
    "mem_issue",
    "dependency_chain",
    "l2_bandwidth",
    "l3_bandwidth",
    "dram_bandwidth",
)


@dataclass
class ExecutionReport:
    """Aggregated cycle attribution for one kernel execution."""

    kernel: str
    n: int
    machine: str
    protocol: str
    total_cycles: float
    seconds: float
    dominant_cycles: Dict[str, float] = field(default_factory=dict)
    exposed_latency_cycles: float = 0.0
    phase_count: int = 0
    memory_events: Dict[str, int] = field(default_factory=dict)

    @property
    def dominant_bound(self) -> str:
        """The constraint that owns the most throughput-bound cycles."""
        return max(self.dominant_cycles, key=self.dominant_cycles.get)

    def share(self, bound: str) -> float:
        """Fraction of throughput-bound cycles attributed to ``bound``."""
        total = sum(self.dominant_cycles.values())
        return self.dominant_cycles.get(bound, 0.0) / total if total else 0.0

    def render(self) -> str:
        lines = [
            f"execution report: {self.kernel} n={self.n} on {self.machine} "
            f"({self.protocol} caches)",
            f"  runtime     : {format_time(self.seconds)} "
            f"({self.total_cycles:.0f} cycles, {self.phase_count} phases)",
            f"  bound by    : {self.dominant_bound} "
            f"({self.share(self.dominant_bound):.0%} of bound cycles)",
        ]
        total = sum(self.dominant_cycles.values())
        for bound in _BOUND_FIELDS:
            cycles = self.dominant_cycles.get(bound, 0.0)
            if cycles > 0 and total:
                lines.append(
                    f"    {bound:<18} {cycles:>12.0f} cycles "
                    f"({cycles / total:.0%})"
                )
        lines.append(
            f"  exposed latency on top: {self.exposed_latency_cycles:.0f} "
            f"cycles"
        )
        ev = self.memory_events
        lines.append(
            "  memory      : "
            f"{ev.get('accesses', 0)} accesses, "
            f"{ev.get('l1_hits', 0)} L1 / {ev.get('l2_hits', 0)} L2 / "
            f"{ev.get('l3_hits', 0)} L3 hits, "
            f"{ev.get('dram_reads', 0)} DRAM reads, "
            f"{ev.get('tlb_misses', 0)} TLB walks"
        )
        lines.append(
            f"  DRAM traffic: {format_bytes(64 * (ev.get('dram_reads', 0) + ev.get('writebacks', 0) + ev.get('nt_lines', 0) + ev.get('hw_prefetch_dram_reads', 0)))}"
        )
        return "\n".join(lines)


def report_from_result(result: ExecutionResult, kernel: str, n: int,
                       machine: str, protocol: str,
                       seconds: float) -> ExecutionReport:
    """Fold an :class:`ExecutionResult`'s phases into a report."""
    dominant: Dict[str, float] = {}
    exposed = 0.0
    for phase in result.phases:
        dominant[phase.dominant] = (
            dominant.get(phase.dominant, 0.0) + phase.throughput_bound
        )
        exposed += phase.exposed_latency
    batch = result.batch
    return ExecutionReport(
        kernel=kernel,
        n=n,
        machine=machine,
        protocol=protocol,
        total_cycles=result.cycles,
        seconds=seconds,
        dominant_cycles=dominant,
        exposed_latency_cycles=exposed,
        phase_count=len(result.phases),
        memory_events={
            "accesses": batch.accesses,
            "l1_hits": batch.l1_hits,
            "l2_hits": batch.l2_hits,
            "l3_hits": batch.l3_hits,
            "dram_reads": batch.dram_reads,
            "writebacks": batch.writebacks,
            "nt_lines": batch.nt_lines,
            "hw_prefetch_dram_reads": batch.hw_prefetch_dram_reads,
            "tlb_misses": batch.tlb_misses,
        },
    )


def explain_kernel(machine: Machine, kernel: Kernel, n: int,
                   protocol="warm", core: int = 0,
                   width_bits: Optional[int] = None) -> ExecutionReport:
    """Run one kernel execution under ``protocol`` and explain it."""
    caps = CodegenCaps.from_machine(machine, width_bits)
    kernel.validate_n(n, caps, 1)
    loaded = machine.load(kernel.build(n, caps))
    proto = make_protocol(protocol)
    machine.bust_caches()
    proto.prepare(machine, lambda: machine.run(loaded, core_id=core))
    run = machine.run(loaded, core_id=core)
    return report_from_result(
        run.result, kernel.name, n, machine.spec.name, proto.name,
        run.seconds,
    )
