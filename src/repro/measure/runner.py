"""Measurement runner: the paper's full W/Q/T methodology.

For each repetition the runner performs the two-run subtraction
discipline:

* **run A** — initialise the kernel's buffers (the "framework
  overhead"), apply the cache protocol, execute the measured kernel;
* **run B** — identical, minus the measured execution.

Counter deltas ``A - B`` isolate the kernel's own work and traffic from
setup stores, protocol sweeps, warmup passes, and platform background
noise.  Runtime is taken directly around the measured execution (the
TSC needs no subtraction).  Medians over repetitions are reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from ..errors import MeasurementError
from ..isa.builder import ProgramBuilder
from ..kernels.base import CodegenCaps, Kernel
from ..machine.machine import LoadedProgram, Machine
from ..obs.spans import SPANS
from ..pmu.perf import PerfSession
from ..trace.collector import TraceCollector
from ..trace.events import MARK, TraceEvent
from ..trace.timeline import TimelineConfig, TimelineSampler
from .protocol import Protocol, make_protocol
from .stats import Summary, summarize
from .traffic import TRAFFIC_EVENTS, bytes_from_session
from .work import WORK_EVENTS_F64, flops_from_session


@dataclass
class Measurement:
    """One kernel's measured W/Q/T at one size and configuration.

    ``work_flops`` is the *counter-derived* work (subject to the cold-
    cache overcount artifact — that is the point of the validation
    experiments); ``true_flops`` is the implementation's exact flop
    count.  Roofline points use ``true_flops`` for performance and the
    measured traffic for intensity, matching the paper's validated
    practice; ``counted_*`` properties expose the raw-counter view.

    ``llc_bytes`` is the traffic a *cache-event* measurement would
    report (LLC demand misses x line size).  With prefetchers active it
    undercounts — the reason the methodology reads the IMC instead.
    """

    #: kernel name as registered (e.g. ``"triad"``)
    kernel: str
    #: problem size (elements per vector, matrix order, ... per kernel)
    n: int
    #: number of cores that executed the kernel in parallel
    threads: int
    #: cache-state protocol applied before the measured run
    #: (``cold`` / ``warm`` / ...)
    protocol: str
    #: name of the machine preset measured on
    machine: str
    #: counter-derived work W in flops — median of the per-rep A-B
    #: deltas; inflated on cold caches by the reissue artifact
    work_flops: float
    #: counter-derived memory traffic Q in bytes (IMC CAS reads+writes
    #: times the line size), median of the per-rep A-B deltas
    traffic_bytes: float
    #: traffic a cache-event measurement would report (LLC demand
    #: misses x line size) — undercounts when prefetchers are on
    llc_bytes: float
    #: measured runtime T in seconds (TSC around the measured run)
    runtime_seconds: float
    #: the implementation's exact flop count (ground truth for W)
    true_flops: int
    #: minimum possible traffic: every input/output byte moved once
    compulsory_bytes: int
    #: number of measurement repetitions the medians summarise
    reps: int
    #: per-level traffic in bytes (median A-B deltas, line-granular):
    #: ``L1`` = demand accesses resolved anywhere, ``L2`` = lines
    #: filled into L1, ``L3`` = lines filled into L2, ``DRAM`` = IMC
    #: CAS traffic (== ``traffic_bytes``).  The hierarchical roofline's
    #: per-level intensities divide ``true_flops`` by these.
    level_bytes: Optional[dict] = None
    #: per-rep distribution of the work deltas (median/mean/min/max)
    work_summary: Optional[Summary] = None
    #: per-rep distribution of the traffic deltas
    traffic_summary: Optional[Summary] = None
    #: per-rep distribution of the measured runtimes
    runtime_summary: Optional[Summary] = None
    #: structured trace of the final repetition's measured window
    #: (a :class:`repro.trace.TraceCollector` or
    #: :class:`repro.trace.TimelineSampler`), when requested via
    #: ``measure_kernel(..., trace=...)``; ``None`` otherwise
    trace: Optional[object] = None

    # ------------------------------------------------------------------
    # derived roofline coordinates
    # ------------------------------------------------------------------
    @property
    def performance(self) -> float:
        """Flops/s from exact work and measured runtime."""
        return self.true_flops / self.runtime_seconds

    @property
    def intensity(self) -> float:
        """Flops/byte from exact work and measured traffic.

        Warm cache-resident runs can measure (near-)zero DRAM traffic;
        their intensity is floored at one cache line of traffic, placing
        them far right on the plot — the regime the paper notes its
        methodology leaves to cache-level analysis.
        """
        if self.traffic_bytes < -64.0 * self.threads:
            raise MeasurementError(
                f"{self.kernel}: negative measured traffic "
                f"({self.traffic_bytes}); A/B subtraction is broken"
            )
        return self.true_flops / max(self.traffic_bytes, 64.0)

    def level_intensity(self, level: str) -> float:
        """Arithmetic intensity against one cache level's traffic.

        ``true_flops / bytes-moved-at-level`` with the same one-line
        floor as :attr:`intensity` (a level a warm run never touches
        would otherwise divide by zero).
        """
        if not self.level_bytes or level not in self.level_bytes:
            raise MeasurementError(
                f"{self.kernel}: no measured traffic for level {level!r}"
            )
        return self.true_flops / max(self.level_bytes[level], 64.0)

    @property
    def counted_performance(self) -> float:
        """Flops/s using raw counted work (inflated on cold caches)."""
        return self.work_flops / self.runtime_seconds

    @property
    def counted_intensity(self) -> float:
        return self.work_flops / max(self.traffic_bytes, 1.0)

    @property
    def work_overcount(self) -> float:
        """Measured W / true W — the overcount factor of experiment F2."""
        return self.work_flops / self.true_flops if self.true_flops else 0.0

    @property
    def traffic_ratio(self) -> float:
        """Measured Q / compulsory Q — the inflation of experiment F3."""
        return self.traffic_bytes / self.compulsory_bytes

    def label(self) -> str:
        return f"{self.kernel} n={self.n} ({self.protocol}, {self.threads}t)"


def build_init_program(buffers: dict, line_bytes: int = 64):
    """Initialisation pass: touch every line of every buffer with a
    store, the way a test harness fills its arrays before the kernel."""
    b = ProgramBuilder()
    value = b.reg()
    for name in sorted(buffers):
        size = buffers[name]
        handle = b.buffer(name, size)
        trips = max(size // line_bytes, 1 if size >= 8 else 0)
        if trips:
            with b.loop(trips, f"init_{name}") as i:
                b.store(value, handle[i * line_bytes], width=64)
        if trips * line_bytes < size and size >= 8:
            b.store(value, handle[size - 8], width=64)
    return b.build()


def measure_kernel(machine: Machine, kernel: Kernel, n: int,
                   protocol="cold", cores: Sequence[int] = (0,),
                   reps: int = 3, width_bits: Optional[int] = None,
                   trace=None) -> Measurement:
    """Measure one kernel configuration with the full methodology.

    ``trace`` requests a structured trace of the final repetition:
    pass ``True`` for a fresh :class:`~repro.trace.TraceCollector`, a
    :class:`~repro.trace.TimelineConfig` for a windowed
    :class:`~repro.trace.TimelineSampler`, or an existing
    collector/sink to reuse.  The sink is attached to the machine's
    trace bus only around the final rep's A window — it merely records
    events, so the measured W/Q/T are identical with and without it
    (a regression test asserts this exactly).
    """
    if reps < 1:
        raise MeasurementError("need at least one repetition")
    collector = None
    if trace is not None and trace is not False:
        if trace is True:
            collector = TraceCollector(machine)
        elif isinstance(trace, TimelineConfig):
            collector = TimelineSampler(machine, trace)
        else:
            collector = trace
    cores = tuple(cores)
    proto: Protocol = make_protocol(protocol)
    caps = CodegenCaps.from_machine(machine, width_bits)
    kernel.validate_n(n, caps, len(cores))

    jobs: List[Tuple[LoadedProgram, int]] = []
    init_jobs: List[Tuple[LoadedProgram, int]] = []
    for rank, core_id in enumerate(cores):
        program = kernel.build(n, caps, rank=rank, nranks=len(cores))
        node = machine.topology.node_of_core(core_id)
        loaded = machine.load(program, node=node)
        jobs.append((loaded, core_id))
        init_program = build_init_program(program.buffers)
        init_jobs.append(
            (LoadedProgram(init_program, loaded.buffer_map, node), core_id)
        )

    def run_inits():
        machine.run_parallel(init_jobs)

    def run_kernel():
        return machine.run_parallel(jobs)

    level_events = ("l1_accesses", "l1_replacement", "l2_lines_in")
    core_events = WORK_EVENTS_F64 + ("llc_misses",) + level_events
    work_reps: List[float] = []
    traffic_reps: List[float] = []
    llc_reps: List[float] = []
    runtime_reps: List[float] = []
    level_reps: dict = {event: [] for event in level_events}
    with SPANS("measure.kernel", kernel=kernel.name, n=n):
        for rep in range(reps):
            # each session starts from fresh-process cache state so the
            # A/B windows are symmetric: without this, dirty lines left
            # by A's measured kernel would be written back during B's
            # window and the subtraction could go negative
            tracing = collector is not None and rep == reps - 1
            machine.bust_caches()
            if tracing:
                machine.trace.attach(collector)
            try:
                with SPANS("measure.rep"), \
                        PerfSession(machine, core_events=core_events,
                                    uncore_events=TRAFFIC_EVENTS,
                                    cores=cores) as a:
                    run_inits()
                    proto.prepare(machine, run_kernel)
                    if tracing:
                        machine.trace.emit(TraceEvent(
                            MARK, "measured:begin", machine.tsc
                        ))
                    run_result = run_kernel()
                    if tracing:
                        machine.trace.emit(TraceEvent(
                            MARK, "measured:end", machine.tsc
                        ))
            finally:
                if tracing:
                    machine.trace.detach()
            machine.bust_caches()
            with SPANS("measure.baseline"), \
                    PerfSession(machine, core_events=core_events,
                                uncore_events=TRAFFIC_EVENTS,
                                cores=cores) as b:
                run_inits()
                proto.prepare(machine, run_kernel)
            work_reps.append(flops_from_session(a) - flops_from_session(b))
            traffic_reps.append(bytes_from_session(a)
                                - bytes_from_session(b))
            llc_reps.append(64.0 * (a.core_delta("llc_misses")
                                    - b.core_delta("llc_misses")))
            for event in level_events:
                level_reps[event].append(64.0 * (a.core_delta(event)
                                                 - b.core_delta(event)))
            runtime_reps.append(run_result.seconds)

    work = summarize(work_reps)
    traffic = summarize(traffic_reps)
    llc = summarize(llc_reps)
    runtime = summarize(runtime_reps)
    level_bytes = {
        "L1": summarize(level_reps["l1_accesses"]).median,
        "L2": summarize(level_reps["l1_replacement"]).median,
        "L3": summarize(level_reps["l2_lines_in"]).median,
        "DRAM": traffic.median,
    }
    return Measurement(
        kernel=kernel.name,
        n=n,
        threads=len(cores),
        protocol=proto.name,
        machine=machine.spec.name,
        work_flops=work.median,
        traffic_bytes=traffic.median,
        llc_bytes=llc.median,
        runtime_seconds=runtime.median,
        true_flops=kernel.expected_flops(n, caps, len(cores)),
        compulsory_bytes=kernel.compulsory_bytes(n),
        reps=reps,
        level_bytes=level_bytes,
        work_summary=work,
        traffic_summary=traffic,
        runtime_summary=runtime,
        trace=collector,
    )


def measure_sweep(machine: Machine, kernel: Kernel, sizes: Iterable[int],
                  **kwargs) -> List[Measurement]:
    """Measure a kernel across problem sizes (one roofline trajectory)."""
    return [measure_kernel(machine, kernel, n, **kwargs) for n in sizes]
