"""Picklable machine references: preset name + kwargs + overrides.

A live :class:`~repro.machine.machine.Machine` owns trace buses, PMU
sessions, and functional cache state — none of which belong on a wire.
Work that crosses a process boundary (the sweep executor's worker pool)
or a cache-key boundary (the content-addressed result cache) instead
carries a :class:`MachineRef`: the *recipe* for a machine, as plain
data.  Workers rebuild an identical fresh machine from the recipe; the
cache hashes the recipe.

A ref names a registered preset and the keyword arguments its factory
takes, plus the spec-level overrides the ablation experiments rely on
(L3 replacement policy, timing-parameter substitution, prefetcher
disable).  Two refs with equal fields build behaviourally identical
machines — the property the sweep determinism suite locks down.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from ..cpu.timing import TimingParams
from ..engine import validate_engine
from ..errors import ConfigurationError
from .machine import Machine, MachineSpec

#: option/timing overrides are stored as sorted ``(key, value)`` tuples
#: so refs stay hashable and their canonical form is order-independent
KwargItems = Tuple[Tuple[str, object], ...]


def _items(kwargs: Optional[dict]) -> KwargItems:
    return tuple(sorted((kwargs or {}).items()))


def apply_l3_policy(spec: MachineSpec, policy: str) -> MachineSpec:
    """Spec with the L3 replacement policy swapped.

    Tree-PLRU needs power-of-two ways; the set count is kept and the
    ways trimmed, so capacity can shrink slightly (the A1 ablation
    notes this in its table).
    """
    l3 = spec.hierarchy.l3
    if policy == "plru" and l3.assoc & (l3.assoc - 1):
        assoc = 1 << (l3.assoc.bit_length() - 1)
        l3 = replace(l3, assoc=assoc,
                     size_bytes=l3.nsets * assoc * l3.line_bytes)
    return replace(
        spec,
        name=f"{spec.name}+{policy}",
        hierarchy=replace(spec.hierarchy, l3=replace(l3, policy=policy)),
    )


@dataclass(frozen=True)
class MachineRef:
    """A machine as data: preset name, factory kwargs, spec overrides."""

    #: registry name in :data:`repro.machine.presets.PRESETS`
    preset: str
    #: keyword arguments for the preset factory (``scale``, ``sockets``)
    options: KwargItems = ()
    #: L3 replacement policy override (``None`` keeps the preset's)
    l3_policy: Optional[str] = None
    #: when non-empty, the spec's timing is *replaced* by
    #: ``TimingParams(**dict(timing))`` — kwargs, not deltas
    timing: KwargItems = ()
    #: ``False`` disables every prefetch engine after construction
    prefetch_enabled: bool = True
    #: execution engine ("fast" or "reference"; equivalence-gated, so
    #: both produce identical measurements — see docs/ENGINE.md)
    engine: str = "fast"

    @classmethod
    def of(cls, preset: str, *, l3_policy: Optional[str] = None,
           timing: Optional[dict] = None, prefetch_enabled: bool = True,
           engine: str = "fast", **options) -> "MachineRef":
        """Ergonomic constructor taking plain keyword arguments."""
        from .presets import PRESETS  # cycle: presets imports Machine too

        if preset not in PRESETS:
            raise ConfigurationError(
                f"unknown machine preset {preset!r}; known: {sorted(PRESETS)}"
            )
        validate_engine(engine)
        return cls(preset=preset, options=_items(options),
                   l3_policy=l3_policy, timing=_items(timing),
                   prefetch_enabled=prefetch_enabled, engine=engine)

    def with_overrides(self, *, l3_policy: Optional[str] = None,
                       timing: Optional[dict] = None,
                       prefetch_enabled: Optional[bool] = None) -> "MachineRef":
        """A copy with spec overrides applied on top of this ref."""
        return replace(
            self,
            l3_policy=self.l3_policy if l3_policy is None else l3_policy,
            timing=self.timing if timing is None else _items(timing),
            prefetch_enabled=(self.prefetch_enabled
                              if prefetch_enabled is None
                              else prefetch_enabled),
        )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def build(self) -> Machine:
        """A fresh machine; equal refs build identical machines."""
        from .presets import PRESETS

        try:
            factory = PRESETS[self.preset]
        except KeyError as exc:
            raise ConfigurationError(
                f"unknown machine preset {self.preset!r}; "
                f"known: {sorted(PRESETS)}"
            ) from exc
        try:
            machine = factory(**dict(self.options))
        except TypeError as exc:
            raise ConfigurationError(
                f"preset {self.preset!r} rejected options "
                f"{dict(self.options)}: {exc}"
            ) from exc
        # safe before the first core() call — cores inherit at creation
        machine.engine = validate_engine(self.engine)
        spec = machine.spec
        if self.l3_policy is not None:
            spec = apply_l3_policy(spec, self.l3_policy)
        if self.timing:
            spec = replace(spec, timing=TimingParams(**dict(self.timing)))
        if spec is not machine.spec:
            machine = Machine(spec, engine=self.engine)
        if not self.prefetch_enabled:
            machine.prefetch_control.disable_all()
        return machine

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def key_doc(self) -> dict:
        """Canonical JSON-able identity (feeds the sweep cache key)."""
        doc = {
            "preset": self.preset,
            "options": [[k, v] for k, v in self.options],
            "l3_policy": self.l3_policy,
            "timing": [[k, v] for k, v in self.timing],
            "prefetch_enabled": self.prefetch_enabled,
        }
        # the default engine is omitted so pre-existing cached sweep
        # results keep their keys (the engines are equivalence-gated,
        # so "fast" results are by definition unchanged)
        if self.engine != "fast":
            doc["engine"] = self.engine
        return doc

    def describe(self) -> str:
        parts = [self.preset]
        parts.extend(f"{k}={v}" for k, v in self.options)
        if self.l3_policy:
            parts.append(f"l3={self.l3_policy}")
        if self.timing:
            parts.append("timing=" + ",".join(f"{k}={v}"
                                              for k, v in self.timing))
        if not self.prefetch_enabled:
            parts.append("prefetch=off")
        if self.engine != "fast":
            parts.append(f"engine={self.engine}")
        return " ".join(parts)
