"""Machine assembly, platform presets, and picklable machine refs."""

from .machine import LoadedProgram, Machine, MachineSpec, RunResult
from .ref import MachineRef
from .presets import (
    PRESETS,
    dual_socket_ep,
    haswell_node,
    ivy_bridge_desktop,
    make_machine,
    paper_machine,
    sandy_bridge_ep,
    tiny_test_machine,
)

__all__ = [
    "LoadedProgram",
    "Machine",
    "MachineRef",
    "MachineSpec",
    "PRESETS",
    "RunResult",
    "dual_socket_ep",
    "haswell_node",
    "ivy_bridge_desktop",
    "make_machine",
    "paper_machine",
    "sandy_bridge_ep",
    "tiny_test_machine",
]
