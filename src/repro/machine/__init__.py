"""Machine assembly and platform presets."""

from .machine import LoadedProgram, Machine, MachineSpec, RunResult
from .presets import (
    PRESETS,
    dual_socket_ep,
    haswell_node,
    ivy_bridge_desktop,
    make_machine,
    paper_machine,
    sandy_bridge_ep,
    tiny_test_machine,
)

__all__ = [
    "LoadedProgram",
    "Machine",
    "MachineSpec",
    "PRESETS",
    "RunResult",
    "dual_socket_ep",
    "haswell_node",
    "ivy_bridge_desktop",
    "make_machine",
    "paper_machine",
    "sandy_bridge_ep",
    "tiny_test_machine",
]
