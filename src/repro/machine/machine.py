"""Machine assembly: cores + hierarchy + PMUs + clock under one object.

A :class:`Machine` is the simulated platform the methodology measures.
It owns the NUMA topology, per-core interpreters and PMUs, the shared
memory hierarchy, the uncore counters, the frequency governor, and the
TSC.  Programs are *loaded* (buffers mapped into the simulated address
space with NUMA placement) and then *run* on one core or on many.

Parallel runs use static partitioning: each participating core executes
its own program; functional cache state is simulated per core (private
L1/L2, shared socket L3) and DRAM bandwidth is divided among the active
cores of each node — the contention that bends the parallel rooflines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..cpu.core import Core, ExecutionResult
from ..cpu.frequency import FrequencyGovernor
from ..cpu.port_model import PortModel
from ..cpu.timing import TimingParams
from ..engine import ckernel, validate_engine
from ..errors import ConfigurationError, ExecutionError
from ..isa.program import Program
from ..memory.allocator import Allocation, BumpAllocator
from ..memory.hierarchy import HierarchyConfig, MemoryHierarchy
from ..memory.numa import Topology
from ..pmu.core_pmu import CorePmu
from ..pmu.uncore import UncorePmu
from ..prefetch import PrefetchControl


@dataclass(frozen=True)
class MachineSpec:
    """Full static description of one simulated platform."""

    name: str
    topology: Topology
    ports: PortModel
    hierarchy: HierarchyConfig
    base_hz: float
    turbo_steps: Tuple[float, ...] = ()
    timing: TimingParams = field(default_factory=TimingParams)
    noise_lines_per_megacycle: float = 20.0

    def __post_init__(self) -> None:
        if self.base_hz <= 0:
            raise ConfigurationError("base frequency must be positive")


@dataclass
class LoadedProgram:
    """A program with its buffers mapped to simulated memory."""

    program: Program
    buffer_map: Dict[str, Allocation]
    node: int


@dataclass
class RunResult:
    """Outcome of one (possibly parallel) program run."""

    seconds: float
    cycles: float
    frequency_hz: float
    active_cores: int
    per_core: Dict[int, ExecutionResult]

    @property
    def result(self) -> ExecutionResult:
        """The single-core result (convenience for sequential runs)."""
        if len(self.per_core) != 1:
            raise ExecutionError("run used multiple cores; inspect per_core")
        return next(iter(self.per_core.values()))

    @property
    def total_true_flops(self) -> int:
        return sum(r.true_flops for r in self.per_core.values())


class Machine:
    """One simulated platform instance."""

    def __init__(self, spec: MachineSpec, engine: str = "fast") -> None:
        self.spec = spec
        #: execution engine for every core this machine creates; may be
        #: reassigned before the first :meth:`core` call (machine refs
        #: do this when rebuilding from a spec)
        self.engine = validate_engine(engine)
        self.topology = spec.topology
        self.ports = spec.ports
        self.governor = FrequencyGovernor(
            spec.base_hz, spec.turbo_steps, turbo_enabled=False
        )
        self.hierarchy = MemoryHierarchy(spec.hierarchy, spec.topology)
        #: the machine-wide trace event bus (see :mod:`repro.trace`);
        #: disabled until a sink is attached, at zero simulation cost
        self.trace = self.hierarchy.bus
        self.allocator = BumpAllocator()
        self.uncore = UncorePmu(
            self.hierarchy.dram,
            noise_lines_per_megacycle=spec.noise_lines_per_megacycle,
        )
        self.tsc: float = 0.0
        self._core_pmus: Dict[int, CorePmu] = {}
        self._cores: Dict[int, Core] = {}
        self._sessions: List[object] = []

    # ------------------------------------------------------------------
    # session observers (counter-multiplexing support)
    # ------------------------------------------------------------------
    def register_session(self, session) -> None:
        """Sessions that need run-boundary counter snapshots (see
        :mod:`repro.pmu.multiplex`) register here."""
        self._sessions.append(session)

    def unregister_session(self, session) -> None:
        if session in self._sessions:
            self._sessions.remove(session)

    # ------------------------------------------------------------------
    # component access
    # ------------------------------------------------------------------
    @property
    def prefetch_control(self) -> PrefetchControl:
        return self.hierarchy.prefetch_control

    def core_pmu(self, core_id: int) -> CorePmu:
        if core_id not in self._core_pmus:
            self._check_core(core_id)
            self._core_pmus[core_id] = CorePmu(core_id)
        return self._core_pmus[core_id]

    def core(self, core_id: int) -> Core:
        if core_id not in self._cores:
            self._check_core(core_id)
            if not self._cores and self.engine == "fast" \
                    and ckernel.available():
                # swap to the numpy array state the compiled datapath
                # shares; must precede the first CorePort construction
                # (ports capture the cache/TLB representation).  Engine
                # reassignment after construction is honoured because
                # no core exists yet at this point.
                self.hierarchy.adopt_array_backend()
            self._cores[core_id] = Core(
                core_id,
                self.ports,
                self.spec.hierarchy,
                self.hierarchy.port(core_id),
                self.core_pmu(core_id),
                self.spec.timing,
                engine=self.engine,
            )
        return self._cores[core_id]

    def _check_core(self, core_id: int) -> None:
        if not 0 <= core_id < self.topology.total_cores:
            raise ConfigurationError(
                f"no core {core_id} on {self.spec.name} "
                f"({self.topology.total_cores} cores)"
            )

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def load(self, program: Program, node: int = 0) -> LoadedProgram:
        """Map a program's buffers onto NUMA ``node`` (numactl --membind)."""
        if not 0 <= node < self.topology.sockets:
            raise ConfigurationError(f"no NUMA node {node}")
        buffer_map = {}
        for name, size in sorted(program.buffers.items()):
            unique = f"{name}@{id(program):x}:{self.allocator.bytes_allocated:x}"
            buffer_map[name] = self.allocator.allocate(unique, size, node=node)
        return LoadedProgram(program, buffer_map, node)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, loaded: LoadedProgram, core_id: int = 0) -> RunResult:
        """Execute one program on one core (everything else idle)."""
        return self.run_parallel([(loaded, core_id)])

    def run_parallel(
        self, jobs: Sequence[Tuple[LoadedProgram, int]]
    ) -> RunResult:
        """Execute one program per core simultaneously.

        DRAM bandwidth on each node is split evenly among that node's
        active cores; the run's wall time is the slowest core's time.
        """
        if not jobs:
            raise ExecutionError("no jobs to run")
        core_ids = [core_id for _loaded, core_id in jobs]
        if len(set(core_ids)) != len(core_ids):
            raise ExecutionError("one program per core: duplicate core id")
        # memory-controller contention follows the *data's* home node:
        # sixteen unbound cores hammering node 0 share node 0's channels
        # no matter which socket they sit on
        contenders_by_node: Dict[int, int] = {}
        for loaded, _core_id in jobs:
            contenders_by_node[loaded.node] = (
                contenders_by_node.get(loaded.node, 0) + 1
            )
        active = len(core_ids)
        frequency = self.governor.frequency(active)
        dram = self.spec.hierarchy.dram
        # trace timestamps for this run start at the current TSC
        self.trace.now = self.tsc
        per_core: Dict[int, ExecutionResult] = {}
        for loaded, core_id in jobs:
            share = dram.bytes_per_cycle_total / contenders_by_node[loaded.node]
            bpc = min(dram.per_core_bytes_per_cycle, share)
            per_core[core_id] = self.core(core_id).execute(
                loaded.program, loaded.buffer_map, bpc
            )
        wall_cycles = max(r.cycles for r in per_core.values())
        self.tsc += wall_cycles
        for session in self._sessions:
            session.on_run_boundary()
        return RunResult(
            seconds=wall_cycles / frequency,
            cycles=wall_cycles,
            frequency_hz=frequency,
            active_cores=active,
            per_core=per_core,
        )

    def run_on_cores(self, program_factory, core_ids: Iterable[int],
                     bind_memory: bool = True) -> RunResult:
        """Build per-core programs with ``program_factory(rank, nranks)``
        and run them together; memory is bound to each core's node when
        ``bind_memory`` (the numactl discipline the paper insists on),
        otherwise everything is allocated on node 0."""
        core_ids = list(core_ids)
        jobs = []
        for rank, core_id in enumerate(core_ids):
            program = program_factory(rank, len(core_ids))
            node = self.topology.node_of_core(core_id) if bind_memory else 0
            jobs.append((self.load(program, node=node), core_id))
        return self.run_parallel(jobs)

    # ------------------------------------------------------------------
    # state control
    # ------------------------------------------------------------------
    def bust_caches(self) -> None:
        """Drop all cache and prefetcher state (cold protocol support)."""
        self.hierarchy.bust()

    def advance_tsc(self, cycles: float) -> None:
        """Model idle wall time between runs (background noise accrues)."""
        if cycles < 0:
            raise ExecutionError("time only moves forward")
        self.tsc += cycles

    # ------------------------------------------------------------------
    # theoretical characteristics (for tables / sanity checks)
    # ------------------------------------------------------------------
    def theoretical_peak_flops(self, width_bits: Optional[int] = None,
                               cores: int = 1) -> float:
        """Datasheet peak flop/s at base clock for ``cores`` cores."""
        width = width_bits or self.ports.max_simd_width
        per_cycle = self.ports.peak_flops_per_cycle(width)
        return per_cycle * self.spec.base_hz * cores

    def theoretical_peak_bandwidth(self, nodes: int = 1) -> float:
        """Datasheet DRAM bandwidth in bytes/s across ``nodes`` sockets."""
        if not 0 < nodes <= self.topology.sockets:
            raise ConfigurationError(f"machine has {self.topology.sockets} nodes")
        return (
            self.spec.hierarchy.dram.bytes_per_cycle_total
            * self.spec.base_hz
            * nodes
        )

    def __repr__(self) -> str:
        t = self.topology
        return (
            f"Machine({self.spec.name}: {t.sockets}x{t.cores_per_socket} cores, "
            f"{self.spec.base_hz / 1e9:.2f} GHz)"
        )
