"""Machine presets modelled on the paper's platforms.

The ISPASS'14 measurements run on Sandy Bridge-class Xeons and a
desktop Ivy Bridge; we provide analogous presets plus a Haswell-class
FMA machine for contrast and a two-socket NUMA variant.

Every preset accepts a ``scale`` factor that shrinks the *cache
capacities* (never the bandwidths or latencies): a 1/8-scale machine
reaches the DRAM-resident regime at 1/8 the working-set size, which
keeps full experiment sweeps fast while preserving every shape the
paper reports.  ``scale=1.0`` reproduces the datasheet geometry.
"""

from __future__ import annotations

from dataclasses import replace

from ..cpu.port_model import (
    PortModel,
    haswell_ports,
    sandy_bridge_ports,
    skylake_avx512_ports,
)
from ..cpu.timing import TimingParams
from ..errors import ConfigurationError
from ..memory.cache import CacheConfig
from ..memory.dram import DramConfig
from ..memory.hierarchy import HierarchyConfig
from ..memory.numa import NumaConfig, Topology
from ..units import GIB, KIB, MIB
from .machine import Machine, MachineSpec


def _hierarchy(l3_size: int, l3_assoc: int, dram: DramConfig,
               scale: float) -> HierarchyConfig:
    if scale <= 0 or scale > 1:
        raise ConfigurationError("scale must be in (0, 1]")
    l1 = CacheConfig("L1d", 32 * KIB, assoc=8, latency_cycles=4,
                     bytes_per_cycle=32.0)
    l2 = CacheConfig("L2", 256 * KIB, assoc=8, latency_cycles=12,
                     bytes_per_cycle=32.0)
    l3 = CacheConfig("L3", l3_size, assoc=l3_assoc, latency_cycles=36,
                     bytes_per_cycle=16.0)
    if scale != 1.0:
        l1 = l1.scaled(scale)
        l2 = l2.scaled(scale)
        l3 = l3.scaled(scale)
    return HierarchyConfig(l1=l1, l2=l2, l3=l3, dram=dram, numa=NumaConfig())


def sandy_bridge_ep(scale: float = 1.0, sockets: int = 1,
                    engine: str = "fast") -> Machine:
    """Xeon E5-2680-class Sandy Bridge-EP: 8 cores/socket @ 2.7 GHz,
    AVX without FMA, 4 DDR3-1600 channels (51.2 GB/s) per socket."""
    base_hz = 2.7e9
    dram = DramConfig(
        channels=4,
        bytes_per_cycle_total=51.2e9 / base_hz,
        per_core_bytes_per_cycle=13.0e9 / base_hz,
        latency_cycles=220,
    )
    spec = MachineSpec(
        name=f"snb-ep{'x2' if sockets == 2 else ''}"
             + (f"@{scale:g}" if scale != 1.0 else ""),
        topology=Topology(sockets=sockets, cores_per_socket=8),
        ports=sandy_bridge_ports(),
        hierarchy=_hierarchy(20 * MIB, 20, dram, scale),
        base_hz=base_hz,
        turbo_steps=(3.5e9, 3.4e9, 3.3e9, 3.2e9, 3.1e9, 3.0e9, 2.9e9, 2.8e9),
    )
    return Machine(spec, engine=engine)


def dual_socket_ep(scale: float = 1.0, engine: str = "fast") -> Machine:
    """Two-socket Sandy Bridge-EP (the NUMA platform)."""
    return sandy_bridge_ep(scale=scale, sockets=2, engine=engine)


def ivy_bridge_desktop(scale: float = 1.0, engine: str = "fast") -> Machine:
    """Core i5-3570-class Ivy Bridge: 4 cores @ 3.4 GHz, 2 channels."""
    base_hz = 3.4e9
    dram = DramConfig(
        channels=2,
        bytes_per_cycle_total=25.6e9 / base_hz,
        per_core_bytes_per_cycle=14.0e9 / base_hz,
        latency_cycles=200,
    )
    spec = MachineSpec(
        name="ivb-desktop" + (f"@{scale:g}" if scale != 1.0 else ""),
        topology=Topology(sockets=1, cores_per_socket=4),
        ports=sandy_bridge_ports(),  # IVB keeps the SNB FP structure
        hierarchy=_hierarchy(6 * MIB, 12, dram, scale),
        base_hz=base_hz,
        turbo_steps=(3.8e9, 3.7e9, 3.6e9, 3.6e9),
    )
    return Machine(spec, engine=engine)


def haswell_node(scale: float = 1.0, engine: str = "fast") -> Machine:
    """Xeon E5 v3-class Haswell: 8 cores @ 2.6 GHz with dual FMA ports
    (the 'what changes with FMA' contrast machine)."""
    base_hz = 2.6e9
    dram = DramConfig(
        channels=4,
        bytes_per_cycle_total=59.7e9 / base_hz,
        per_core_bytes_per_cycle=15.0e9 / base_hz,
        latency_cycles=230,
    )
    spec = MachineSpec(
        name="hsw-ep" + (f"@{scale:g}" if scale != 1.0 else ""),
        topology=Topology(sockets=1, cores_per_socket=8),
        ports=haswell_ports(),
        hierarchy=_hierarchy(24 * MIB, 24, dram, scale),
        base_hz=base_hz,
        turbo_steps=(3.3e9, 3.3e9, 3.2e9, 3.1e9, 3.0e9, 2.9e9, 2.8e9, 2.7e9),
    )
    return Machine(spec, engine=engine)


def tiny_test_machine(engine: str = "fast") -> Machine:
    """A deliberately small 2-core machine for fast unit tests: every
    cache regime is reachable with kilobyte-sized working sets."""
    dram = DramConfig(
        channels=1,
        bytes_per_cycle_total=8.0,
        per_core_bytes_per_cycle=6.0,
        latency_cycles=100,
    )
    hierarchy = HierarchyConfig(
        l1=CacheConfig("L1d", 1 * KIB, assoc=2, latency_cycles=4,
                       bytes_per_cycle=32.0),
        l2=CacheConfig("L2", 4 * KIB, assoc=4, latency_cycles=12,
                       bytes_per_cycle=32.0),
        l3=CacheConfig("L3", 16 * KIB, assoc=8, latency_cycles=30,
                       bytes_per_cycle=16.0),
        dram=dram,
        numa=NumaConfig(),
    )
    spec = MachineSpec(
        name="tiny",
        topology=Topology(sockets=1, cores_per_socket=2),
        ports=sandy_bridge_ports(),
        hierarchy=hierarchy,
        base_hz=1.0e9,
        turbo_steps=(1.5e9, 1.2e9),
        noise_lines_per_megacycle=0.0,
    )
    return Machine(spec, engine=engine)


def oracle_test_machine(engine: str = "fast") -> Machine:
    """Single-core machine with uniformly large caches and zero noise.

    Every level is 256 KiB/16-way (256 sets, power of two), so any
    kernel footprint up to a quarter of a level is conflict-free
    everywhere and the infinite-cache analytic model of
    :mod:`repro.oracle.analytic` is exact.  Registered as the
    ``oracle`` preset so sweeps and ``repro.analyze`` can target it
    through a :class:`~repro.machine.ref.MachineRef`.
    """
    base_hz = 2.7e9
    dram = DramConfig(
        channels=4,
        bytes_per_cycle_total=32.0,
        per_core_bytes_per_cycle=16.0,
        latency_cycles=220,
    )
    mk = lambda name, lat, bpc: CacheConfig(  # noqa: E731
        name, 256 * KIB, assoc=16, latency_cycles=lat, bytes_per_cycle=bpc
    )
    spec = MachineSpec(
        name="oracle",
        topology=Topology(sockets=1, cores_per_socket=1),
        ports=sandy_bridge_ports(),
        hierarchy=HierarchyConfig(
            l1=mk("L1d", 4, 32.0),
            l2=mk("L2", 12, 32.0),
            l3=mk("L3", 36, 16.0),
            dram=dram,
            numa=NumaConfig(),
        ),
        base_hz=base_hz,
        noise_lines_per_megacycle=0.0,
    )
    return Machine(spec, engine=engine)


#: preset registry used by the CLI and experiments
PRESETS = {
    "snb-ep": sandy_bridge_ep,
    "snb": sandy_bridge_ep,          # shorthand alias
    "snb-ep-x2": dual_socket_ep,
    "ivb-desktop": ivy_bridge_desktop,
    "hsw-ep": haswell_node,
    "tiny": lambda scale=1.0, engine="fast": tiny_test_machine(engine=engine),
    "oracle": lambda scale=1.0, engine="fast": oracle_test_machine(
        engine=engine),
}


def make_machine(name: str, scale: float = 1.0,
                 engine: str = "fast") -> Machine:
    """Instantiate a preset by registry name."""
    try:
        factory = PRESETS[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown machine preset {name!r}; known: {sorted(PRESETS)}"
        ) from exc
    if name == "tiny":
        return factory(engine=engine)
    return factory(scale=scale, engine=engine)


def paper_machine(scale: float = 0.125, engine: str = "fast") -> Machine:
    """The default experiment platform: a 1/8-scale Sandy Bridge-EP.

    Cache capacities are scaled down so the DRAM-resident regime starts
    around a 400 KiB working set instead of 3 MiB+, keeping full
    table/figure sweeps fast; bandwidths, latencies and port structure
    are unscaled, so every measured *shape* matches the full machine.
    """
    return sandy_bridge_ep(scale=scale, engine=engine)
