"""Roofline-as-a-service: asyncio HTTP/JSON front-end (``repro serve``).

See :mod:`repro.serve.server` for the endpoint map and
``docs/SERVICE.md`` for the operator guide.  Stdlib-only: asyncio
streams for transport, the sweep engine for the work, the metrics
registry for observability.
"""

from .http import HttpError, Request
from .jobs import Job, JobTable, job_key
from .server import RooflineServer

__all__ = ["HttpError", "Job", "JobTable", "Request", "RooflineServer",
           "job_key"]
