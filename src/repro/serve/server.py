"""Roofline-as-a-service: an asyncio HTTP/JSON front-end on the sweep
engine.

``repro serve`` starts a stdlib-only HTTP server exposing the
measurement pipeline:

* ``POST /measure`` — one kernel x size point (W/Q/T payload);
* ``POST /analyze`` — the flagship hierarchical analysis (ceiling
  discovery + kernel sweep + per-level placement);
* ``POST /sweep``   — a measurement grid (explicit sizes or a named
  figure grid);
* ``GET /jobs/<id>`` — job status/result; ``GET /jobs/<id>/events``
  streams per-point progress as NDJSON;
* ``GET /metrics`` (Prometheus exposition), ``GET /healthz``.

Requests are **coalesced** (:mod:`repro.serve.jobs`): identical
in-flight requests share one execution, and repeats after completion
replay point-by-point from the content-addressed sweep cache — the
service never simulates the same inputs twice.  POSTs run the work on
a thread pool (the event loop only shuffles bytes) and respond when
the job finishes; pass ``{"async": true}`` to get ``202`` + a job id
immediately and poll ``/jobs/<id>`` instead.

On SIGTERM/SIGINT the server **drains**: the listener closes (new
connections are refused), in-flight jobs run to completion and their
responses flush, then the process exits 0.
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

from ..errors import ReproError
from ..obs.metrics import REGISTRY
from .http import (
    HttpError,
    Request,
    read_request,
    response_bytes,
    stream_headers,
)
from .jobs import DONE, ERROR, RUNNING, JobTable

__all__ = ["RooflineServer"]

#: job kinds and the params each requires
_KINDS = ("measure", "analyze", "sweep")


def _metrics():
    return {
        "requests": REGISTRY.counter(
            "repro_serve_requests_total",
            "HTTP requests accepted by the roofline service"),
        "request_seconds": REGISTRY.histogram(
            "repro_serve_request_seconds",
            "Wall time to answer one service request"),
        "queue_depth": REGISTRY.gauge(
            "repro_serve_queue_depth",
            "Service jobs pending or running"),
        "coalesced": REGISTRY.counter(
            "repro_serve_coalesced_total",
            "Requests that attached to an identical in-flight job"),
        "executed": REGISTRY.counter(
            "repro_serve_jobs_executed_total",
            "Service jobs actually executed (post-coalescing)"),
    }


class RooflineServer:
    """The service: routing, job lifecycle, metrics, graceful drain."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8787,
                 jobs: Optional[int] = None, backend: Optional[str] = None,
                 cache_dir: Optional[str] = None, no_cache: bool = False,
                 threads: int = 4) -> None:
        self.host = host
        self.port = port
        self.jobs = jobs
        self.backend = backend
        self.cache_dir = cache_dir
        self.no_cache = no_cache
        self.table = JobTable()
        self.draining = False
        self._server: Optional[asyncio.AbstractServer] = None
        self._pool = ThreadPoolExecutor(
            max_workers=threads, thread_name_prefix="repro-serve")
        self._tasks: set = set()
        self._metrics = _metrics()
        self._drained = None  # asyncio.Event, created on start

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self):
        """Bound ``(host, port)`` — available after :meth:`start`."""
        return self._server.sockets[0].getsockname()[:2]

    async def start(self) -> None:
        self._drained = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port)

    async def serve_forever(self, install_signals: bool = True) -> None:
        """Run until a drain signal lands; returns after the drain."""
        if self._server is None:
            await self.start()
        if install_signals:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(
                    signum, lambda s=signum: asyncio.ensure_future(
                        self.drain(reason=signal.Signals(s).name)))
        await self._drained.wait()

    async def drain(self, reason: str = "drain") -> None:
        """Stop accepting, finish in-flight work, release resources."""
        if self.draining:
            return
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._tasks:
            await asyncio.gather(*list(self._tasks),
                                 return_exceptions=True)
        self._pool.shutdown(wait=True)
        if self._drained is not None:
            self._drained.set()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        started = time.perf_counter()
        try:
            try:
                request = await read_request(reader)
                if request is None:
                    return
                self._metrics["requests"].inc()
                await self._dispatch(request, writer)
            except HttpError as exc:
                await self._send_error(writer, exc.status, str(exc))
            except ReproError as exc:
                await self._send_error(writer, 400, str(exc))
            except Exception as exc:  # noqa: BLE001 — last-resort 500
                await self._send_error(
                    writer, 500, f"{type(exc).__name__}: {exc}")
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._metrics["request_seconds"].observe(
                time.perf_counter() - started)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _send_json(self, writer: asyncio.StreamWriter, status: int,
                         doc: dict) -> None:
        body = (json.dumps(doc, indent=2) + "\n").encode("utf-8")
        writer.write(response_bytes(status, body))
        await writer.drain()

    async def _send_error(self, writer: asyncio.StreamWriter, status: int,
                          message: str) -> None:
        await self._send_json(writer, status, {"error": message})

    async def _dispatch(self, request: Request,
                        writer: asyncio.StreamWriter) -> None:
        path = request.path.rstrip("/") or "/"
        if request.method == "GET":
            if path == "/healthz":
                return await self._send_json(writer, 200, {
                    "status": "draining" if self.draining else "ok",
                    "jobs_in_flight": self.table.in_flight(),
                })
            if path == "/metrics":
                body = REGISTRY.to_prometheus().encode("utf-8")
                writer.write(response_bytes(
                    status=200, body=body,
                    content_type="text/plain; version=0.0.4"))
                return await writer.drain()
            if path.startswith("/jobs/"):
                return await self._handle_jobs(path, writer)
            raise HttpError(404, f"no such resource: {path}")
        if request.method == "POST":
            kind = path.lstrip("/")
            if kind not in _KINDS:
                raise HttpError(404, f"no such endpoint: {path}")
            if self.draining:
                raise HttpError(503, "server is draining")
            return await self._handle_submit(kind, request, writer)
        raise HttpError(405, f"method {request.method} not supported")

    # ------------------------------------------------------------------
    # jobs
    # ------------------------------------------------------------------
    async def _handle_submit(self, kind: str, request: Request,
                             writer: asyncio.StreamWriter) -> None:
        doc = request.json()
        wants_async = bool(doc.pop("async", False))
        params = _validate(kind, doc)
        job, attached = self.table.submit(kind, params)
        if attached:
            self._metrics["coalesced"].inc()
        else:
            self._metrics["executed"].inc()
            self._metrics["queue_depth"].set(self.table.in_flight())
            task = asyncio.ensure_future(self._run_job(job))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)
        if wants_async:
            return await self._send_json(writer, 202, {
                "job": job.id, "status": job.status,
                "coalesced": attached,
            })
        await job.done_event.wait()
        status = 200 if job.status == DONE else 500
        await self._send_json(writer, status, job.describe())

    async def _run_job(self, job) -> None:
        loop = asyncio.get_running_loop()

        def emit(doc: dict) -> None:
            loop.call_soon_threadsafe(job.add_event, doc)

        job.status = RUNNING
        job.add_event({"type": "job", "status": RUNNING,
                       "kind": job.kind})
        try:
            job.result = await loop.run_in_executor(
                self._pool, self._execute, job.kind, job.params, emit)
            job.status = DONE
        except ReproError as exc:
            job.status = ERROR
            job.error = str(exc)
        except Exception as exc:  # noqa: BLE001 — job must terminate
            job.status = ERROR
            job.error = f"{type(exc).__name__}: {exc}"
        job.add_event({"type": "job", "status": job.status})
        self.table.finish(job)
        self._metrics["queue_depth"].set(self.table.in_flight())
        job.done_event.set()

    async def _handle_jobs(self, path: str,
                           writer: asyncio.StreamWriter) -> None:
        parts = path.split("/")  # ['', 'jobs', '<id>'(, 'events')]
        job = self.table.get(parts[2]) if len(parts) >= 3 else None
        if job is None:
            raise HttpError(404, f"no such job: {path}")
        if len(parts) == 3:
            return await self._send_json(writer, 200, job.describe())
        if len(parts) == 4 and parts[3] == "events":
            return await self._stream_events(job, writer)
        raise HttpError(404, f"no such resource: {path}")

    async def _stream_events(self, job,
                             writer: asyncio.StreamWriter) -> None:
        """Replay recorded events, then follow until the job ends."""
        writer.write(stream_headers())
        await writer.drain()
        cursor = 0
        while True:
            while cursor < len(job.events):
                line = json.dumps(job.events[cursor],
                                  sort_keys=True) + "\n"
                writer.write(line.encode("utf-8"))
                cursor += 1
            await writer.drain()
            if job.finished and cursor >= len(job.events):
                return
            try:
                await asyncio.wait_for(job.done_event.wait(), timeout=0.1)
            except asyncio.TimeoutError:
                pass

    # ------------------------------------------------------------------
    # the actual work (runs on the thread pool)
    # ------------------------------------------------------------------
    def _cache(self):
        from ..sweep import SweepCache
        return None if self.no_cache else SweepCache(self.cache_dir)

    def _execute(self, kind: str, params: dict, emit) -> dict:
        from ..measure.runner import Measurement  # noqa: F401 — warm import
        runner = getattr(self, f"_run_{kind}")
        return runner(params, emit)

    def _on_point(self, emit):
        def on_point(done: int, total: int, point, status: str) -> None:
            emit({"type": "point", "done": done, "total": total,
                  "label": point.label(), "status": status})
        return on_point

    def _machine_ref(self, params: dict):
        from ..machine.ref import MachineRef
        name = params.get("machine", "snb-ep")
        options = {}
        if name != "tiny":
            options["scale"] = params.get("scale", 0.125)
        if params.get("engine", "fast") != "fast":
            options["engine"] = params["engine"]
        return MachineRef.of(name, **options)

    def _run_measure(self, params: dict, emit) -> dict:
        from ..sweep import SweepPlan, measurement_to_payload, run_plan
        ref = self._machine_ref(params)
        cores = tuple(ref.build().topology.first_cores(
            params.get("threads", 1)))
        plan = SweepPlan()
        plan.add_sweep(ref, params["kernel"], [params["n"]],
                       protocol=params.get("protocol", "cold"),
                       reps=params.get("reps", 2), cores=cores)
        run = run_plan(plan, jobs=self.jobs, cache=self._cache(),
                       backend=self.backend,
                       on_point=self._on_point(emit))
        return {
            "machine": ref.key_doc(),
            "measurement": measurement_to_payload(run.measurements[0]),
            "stats": run.stats.to_dict(),
            "backend": run.backend,
        }

    def _run_sweep(self, params: dict, emit) -> dict:
        from ..sweep import (
            SweepPlan,
            make_grid,
            measurement_to_payload,
            run_plan,
        )
        ref = self._machine_ref(params)
        if "grid" in params:
            plan = make_grid(params["grid"], ref,
                             quick=bool(params.get("quick", False)),
                             reps=params.get("reps", 2))
        else:
            cores = tuple(ref.build().topology.first_cores(
                params.get("threads", 1)))
            plan = SweepPlan()
            for protocol in str(params.get("protocol",
                                           "cold")).split(","):
                plan.add_sweep(ref, params["kernel"],
                               [int(n) for n in params["sizes"]],
                               protocol=protocol,
                               reps=params.get("reps", 2), cores=cores)
        run = run_plan(plan, jobs=self.jobs, cache=self._cache(),
                       backend=self.backend,
                       on_point=self._on_point(emit))
        return {
            "machine": ref.key_doc(),
            "stats": run.stats.to_dict(),
            "keys": run.keys,
            "backend": run.backend,
            "measurements": [measurement_to_payload(m)
                             for m in run.measurements],
        }

    def _run_analyze(self, params: dict, emit) -> dict:
        from ..roofline.ert import DEFAULT_FLOP_COUNTS
        from ..roofline.hierarchical import analyze
        ref = self._machine_ref({"machine": params.get("machine", "snb"),
                                 **params})
        emit({"type": "phase", "phase": "ceilings"})
        result = analyze(
            params["kernel"], [int(n) for n in params["sizes"]],
            machine=ref, protocol=params.get("protocol", "cold"),
            reps=params.get("reps", 2),
            flop_counts=[int(f) for f in params.get(
                "flops", DEFAULT_FLOP_COUNTS)],
            jobs=self.jobs, cache=self._cache(), backend=self.backend,
        )
        emit({"type": "phase", "phase": "placed"})
        return result.to_json_doc()


def _validate(kind: str, doc: dict) -> dict:
    """Check required fields early so errors are 400s, not job failures."""
    def need(*names):
        missing = [n for n in names if n not in doc]
        if missing:
            raise HttpError(
                400, f"/{kind} requires {', '.join(missing)}")

    if kind == "measure":
        need("kernel", "n")
        if not isinstance(doc["n"], int):
            raise HttpError(400, "n must be an integer")
    elif kind == "analyze":
        need("kernel", "sizes")
    elif kind == "sweep":
        if "grid" not in doc:
            need("kernel", "sizes")
    if "sizes" in doc and (not isinstance(doc["sizes"], list)
                           or not doc["sizes"]):
        raise HttpError(400, "sizes must be a non-empty list")
    return doc
