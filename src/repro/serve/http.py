"""Minimal HTTP/1.1 plumbing for the roofline service.

Just enough protocol for a JSON API on stdlib asyncio streams: parse a
request line + headers + ``Content-Length`` body, build a response
with a status line and a byte body.  Every response carries
``Connection: close`` — one request per connection keeps the state
machine trivial, and the endpoints are coarse enough (a measurement, a
sweep) that connection reuse would be noise.  Streaming endpoints
(``/jobs/<id>/events``) write headers without a content length and
close the socket when the stream ends, HTTP/1.0 style.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional
from urllib.parse import parse_qs, urlsplit

from ..errors import ReproError

__all__ = ["HttpError", "Request", "read_request", "response_bytes",
           "stream_headers"]

#: request line + headers must fit here; bodies are bounded separately
MAX_HEADER_BYTES = 32 * 1024

#: request bodies are tiny JSON docs; anything bigger is a mistake
MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(ReproError):
    """A request defect that maps straight to a status code."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class Request:
    """One parsed request."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> dict:
        """The body as a JSON object; ``{}`` for an empty body."""
        if not self.body:
            return {}
        try:
            doc = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}")
        if not isinstance(doc, dict):
            raise HttpError(400, "request body must be a JSON object")
        return doc


async def read_request(reader: asyncio.StreamReader,
                       timeout: float = 30.0) -> Optional[Request]:
    """Parse one request; ``None`` when the client hung up first."""
    try:
        head = await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), timeout=timeout)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close before any bytes
        raise HttpError(400, "connection closed mid-headers")
    except asyncio.LimitOverrunError:
        raise HttpError(413, "headers exceed the size cap")
    except asyncio.TimeoutError:
        raise HttpError(408, "timed out reading request headers")
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(413, "headers exceed the size cap")

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise HttpError(400, f"malformed request line: {lines[0]!r}")
    method, target, _version = parts
    split = urlsplit(target)
    query = {key: values[-1]
             for key, values in parse_qs(split.query).items()}

    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise HttpError(400, f"bad Content-Length: {length_text!r}")
    if length < 0 or length > MAX_BODY_BYTES:
        raise HttpError(413, f"body of {length} bytes exceeds the cap")
    if length:
        try:
            body = await asyncio.wait_for(
                reader.readexactly(length), timeout=timeout)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "connection closed mid-body")
        except asyncio.TimeoutError:
            raise HttpError(408, "timed out reading request body")
    return Request(method=method, path=split.path, query=query,
                   headers=headers, body=body)


def response_bytes(status: int, body: bytes,
                   content_type: str = "application/json") -> bytes:
    reason = _REASONS.get(status, "Unknown")
    head = (f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n")
    return head.encode("latin-1") + body


def stream_headers(status: int = 200,
                   content_type: str = "application/x-ndjson") -> bytes:
    """Headers for a body of unknown length, terminated by close."""
    reason = _REASONS.get(status, "Unknown")
    head = (f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Cache-Control: no-cache\r\n"
            f"Connection: close\r\n\r\n")
    return head.encode("latin-1")
