"""Job table with request coalescing for the roofline service.

Every ``POST /measure|analyze|sweep`` becomes a :class:`Job` keyed by
the SHA-256 of its canonical ``(kind, params)`` document — the same
canonical-JSON discipline the sweep cache uses, so two requests that
would simulate the same thing hash the same.  Coalescing happens at
two layers:

* **in-flight** — an identical request arriving while a job is pending
  or running *attaches* to it (no second execution, both callers get
  the one result);
* **completed** — an identical request arriving later runs again, but
  every sweep point replays from the content-addressed sweep cache, so
  no simulation work repeats either way.

Jobs carry a bounded progress-event list fed from the sweep's
``on_point`` callback; ``GET /jobs/<id>/events`` streams it as NDJSON.
The table holds finished jobs for later ``GET /jobs/<id>`` polls,
evicting the oldest past :data:`MAX_FINISHED_JOBS`.
"""

from __future__ import annotations

import asyncio
import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["Job", "JobTable", "job_key"]

#: finished jobs retained for GET /jobs/<id>; oldest evicted past this
MAX_FINISHED_JOBS = 256

#: per-job progress-event ring cap
MAX_JOB_EVENTS = 4096

PENDING, RUNNING, DONE, ERROR = "pending", "running", "done", "error"


def canonical(doc) -> str:
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def job_key(kind: str, params: dict) -> str:
    """Content hash of one request; identical requests collide here."""
    return hashlib.sha256(
        canonical({"kind": kind, "params": params}).encode("utf-8")
    ).hexdigest()


@dataclass
class Job:
    """One unit of service work and its observable lifecycle."""

    id: str
    kind: str
    params: dict
    key: str
    status: str = PENDING
    result: Optional[dict] = None
    error: Optional[str] = None
    #: how many requests rode this execution beyond the first
    coalesced: int = 0
    events: List[dict] = field(default_factory=list)
    events_dropped: int = 0
    done_event: asyncio.Event = field(default_factory=asyncio.Event)
    #: monotonically increasing sequence for event streaming
    _event_seq: int = 0

    def add_event(self, doc: dict) -> None:
        """Append one progress event (ring-bounded)."""
        self._event_seq += 1
        doc = {"seq": self._event_seq, **doc}
        self.events.append(doc)
        if len(self.events) > MAX_JOB_EVENTS:
            del self.events[0]
            self.events_dropped += 1

    @property
    def finished(self) -> bool:
        return self.status in (DONE, ERROR)

    def describe(self) -> dict:
        doc = {
            "id": self.id,
            "kind": self.kind,
            "status": self.status,
            "coalesced": self.coalesced,
            "events": len(self.events),
        }
        if self.events_dropped:
            doc["events_dropped"] = self.events_dropped
        if self.status == ERROR:
            doc["error"] = self.error
        if self.status == DONE:
            doc["result"] = self.result
        return doc


class JobTable:
    """Id and key indexes over live + recently finished jobs.

    Single-threaded by construction: every method runs on the event
    loop; worker threads touch jobs only via
    ``loop.call_soon_threadsafe``.
    """

    def __init__(self) -> None:
        self._by_id: Dict[str, Job] = {}
        self._by_key: Dict[str, Job] = {}
        self._finished_order: List[str] = []
        self._ids = itertools.count(1)

    def submit(self, kind: str, params: dict) -> Tuple[Job, bool]:
        """Get-or-create the job for one request.

        Returns ``(job, attached)`` — ``attached`` is True when the
        request coalesced onto an already in-flight identical job.
        """
        key = job_key(kind, params)
        existing = self._by_key.get(key)
        if existing is not None and not existing.finished:
            existing.coalesced += 1
            return existing, True
        job = Job(id=f"j{next(self._ids)}", kind=kind, params=params,
                  key=key)
        self._by_id[job.id] = job
        self._by_key[key] = job
        return job, False

    def get(self, job_id: str) -> Optional[Job]:
        return self._by_id.get(job_id)

    def finish(self, job: Job) -> None:
        """Mark terminal state bookkeeping; evict old finished jobs."""
        self._finished_order.append(job.id)
        while len(self._finished_order) > MAX_FINISHED_JOBS:
            old_id = self._finished_order.pop(0)
            old = self._by_id.pop(old_id, None)
            if old is not None and self._by_key.get(old.key) is old:
                del self._by_key[old.key]

    def in_flight(self) -> int:
        return sum(1 for job in self._by_id.values() if not job.finished)

    def __len__(self) -> int:
        return len(self._by_id)
