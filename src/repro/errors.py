"""Exception hierarchy for the roofline reproduction library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch package failures with a single ``except`` clause while
still being able to distinguish the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class IsaError(ReproError):
    """Malformed instruction, register misuse, or invalid program IR."""


class AssemblerError(IsaError):
    """Textual assembly could not be parsed or formatted."""


class MemoryError_(ReproError):
    """Cache/DRAM/allocator configuration or access error.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`MemoryError`.
    """


class AllocationError(MemoryError_):
    """The simulated allocator ran out of space or got a bad request."""


class ConfigurationError(ReproError):
    """A machine, cache, or experiment was configured inconsistently."""


class ExecutionError(ReproError):
    """The interpreter hit a state it cannot execute."""


class PmuError(ReproError):
    """Counter programming error (unknown event, session misuse)."""


class MeasurementError(ReproError):
    """A measurement protocol was violated or produced unusable data."""


class ExperimentError(ReproError):
    """An experiment failed to run or validate its shape criteria."""


class SweepError(ReproError):
    """A sweep plan, its executor, or the result cache misbehaved."""


class SweepPointError(SweepError):
    """One sweep point failed inside a worker.

    The message names the failing point and, when the flight recorder
    managed to write one, the path of its crash dump under
    ``artifacts/flightrec/``.  Raised from worker processes, so it must
    stay constructible from its message alone to survive pickling.
    """


class TimelineError(ReproError):
    """A timeline profile was misconfigured or the trace cannot be
    windowed (empty trace, window wider than the measured span, ...)."""
