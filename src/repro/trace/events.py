"""Trace event schema.

Every observable the simulated machine produces flows through one event
type, :class:`TraceEvent`, tagged with a *kind*:

* ``phase``    — one timed phase (an innermost-loop execution or a
  straight-line block) with its full cycle-breakdown attribution from
  the timing model, the functional memory counts of its batch, and the
  reissue-overcount bookkeeping.  Emitted by the interpreter.
* ``cache``    — per-batch cache resolution counts: per-level hits,
  evictions, TLB walks.  Emitted by each core's memory port.
* ``dram``     — per-batch IMC-visible line transfers (CAS reads and
  writes) attributed to the data's home node.  Emitted by the port.
* ``prefetch`` — per-batch prefetch activity plus the cumulative
  per-engine issued/useful counters.  Emitted by the port.
* ``counters`` — a PMU counter snapshot (session open/close).  Emitted
  by :class:`repro.pmu.perf.PerfSession`.
* ``mark``     — an instant annotation (e.g. the measurement runner's
  ``measured:begin`` / ``measured:end`` region markers).
* ``sweep``    — one sweep-plan point completing (cache hit or fresh
  simulation) with its status and short cache key.  Emitted by the
  sweep executor; timestamps are host *seconds*, not cycles, since a
  sweep spans many machines (export with ``frequency_hz=1.0``).

Timestamps (``ts``) and durations (``dur``) are in *cycles* on the
machine's TSC timeline; exporters convert to wall time using the
machine's frequency.  ``core`` is the emitting core id, or ``-1`` for
machine-scope events (uncore counters, marks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

#: event-kind constants
PHASE = "phase"
CACHE = "cache"
DRAM = "dram"
PREFETCH = "prefetch"
COUNTERS = "counters"
MARK = "mark"
SWEEP = "sweep"

KINDS = (PHASE, CACHE, DRAM, PREFETCH, COUNTERS, MARK, SWEEP)


@dataclass
class TraceEvent:
    """One observable occurrence on the simulated machine.

    ``args`` carries the kind-specific payload (flat numeric counters
    for ``cache``/``dram``/``prefetch``, the cycle breakdown for
    ``phase``, counter values for ``counters``).
    """

    kind: str
    name: str
    ts: float
    core: int = -1
    dur: float = 0.0
    args: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-ready flat representation (used by the JSONL exporter)."""
        return {
            "kind": self.kind,
            "name": self.name,
            "ts": self.ts,
            "core": self.core,
            "dur": self.dur,
            "args": self.args,
        }
