"""The trace event bus: zero overhead when disabled.

Every :class:`repro.machine.machine.Machine` owns one
:class:`TraceBus`.  Instrumented components (interpreter, memory ports,
PMU sessions) hold a reference to it and guard every emission site with
the ``enabled`` flag::

    if bus.enabled:
        bus.emit(TraceEvent(...))

With no sink attached the guard is a single attribute load and branch —
the event object is never even constructed — so tracing costs nothing
unless a measurement asks for it.

The bus also carries the machine's notion of *when*: ``now`` is set to
the TSC at the start of every run, and ``cursor`` is advanced by the
interpreter to the current phase's start so that batch-level events
emitted from inside the memory system land at the right point on the
timeline.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

from .events import TraceEvent


class NullSink:
    """Discards everything (the default when nothing is attached)."""

    def emit(self, event: TraceEvent) -> None:
        pass


class RingSink:
    """Keeps the most recent ``capacity`` events, counts them all.

    The distributed-telemetry plane attaches one of these to each sweep
    worker's machine bus: the ring bounds what rides back to the parent
    in the telemetry section, while ``total`` preserves how many events
    the run actually produced (so a truncated sample is never mistaken
    for the full stream).  The worker flight recorder uses the same
    shape for its crash dumps.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.total = 0
        self._ring: "deque[TraceEvent]" = deque(maxlen=capacity)

    def emit(self, event: TraceEvent) -> None:
        self.total += 1
        self._ring.append(event)

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)


class ListSink:
    """Records events in order into a plain list."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)


class TraceBus:
    """Single-sink event bus with an explicit cheap-to-test enable flag."""

    __slots__ = ("enabled", "sink", "now", "cursor")

    def __init__(self) -> None:
        self.enabled: bool = False
        self.sink = NullSink()
        #: TSC at the start of the current run (set by the machine)
        self.now: float = 0.0
        #: cycle timestamp of the current phase (set by the interpreter)
        self.cursor: float = 0.0

    def attach(self, sink) -> None:
        """Route events into ``sink`` and enable emission."""
        self.sink = sink
        self.enabled = True

    def detach(self):
        """Disable emission; returns the sink that was attached."""
        sink = self.sink
        self.sink = NullSink()
        self.enabled = False
        return sink

    def emit(self, event: TraceEvent) -> None:
        if self.enabled:
            self.sink.emit(event)
