"""The trace event bus: zero overhead when disabled.

Every :class:`repro.machine.machine.Machine` owns one
:class:`TraceBus`.  Instrumented components (interpreter, memory ports,
PMU sessions) hold a reference to it and guard every emission site with
the ``enabled`` flag::

    if bus.enabled:
        bus.emit(TraceEvent(...))

With no sink attached the guard is a single attribute load and branch —
the event object is never even constructed — so tracing costs nothing
unless a measurement asks for it.

The bus also carries the machine's notion of *when*: ``now`` is set to
the TSC at the start of every run, and ``cursor`` is advanced by the
interpreter to the current phase's start so that batch-level events
emitted from inside the memory system land at the right point on the
timeline.
"""

from __future__ import annotations

from typing import List, Optional

from .events import TraceEvent


class NullSink:
    """Discards everything (the default when nothing is attached)."""

    def emit(self, event: TraceEvent) -> None:
        pass


class ListSink:
    """Records events in order into a plain list."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)


class TraceBus:
    """Single-sink event bus with an explicit cheap-to-test enable flag."""

    __slots__ = ("enabled", "sink", "now", "cursor")

    def __init__(self) -> None:
        self.enabled: bool = False
        self.sink = NullSink()
        #: TSC at the start of the current run (set by the machine)
        self.now: float = 0.0
        #: cycle timestamp of the current phase (set by the interpreter)
        self.cursor: float = 0.0

    def attach(self, sink) -> None:
        """Route events into ``sink`` and enable emission."""
        self.sink = sink
        self.enabled = True

    def detach(self):
        """Disable emission; returns the sink that was attached."""
        sink = self.sink
        self.sink = NullSink()
        self.enabled = False
        return sink

    def emit(self, event: TraceEvent) -> None:
        if self.enabled:
            self.sink.emit(event)
