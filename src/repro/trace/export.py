"""Trace exporters: Chrome trace-event JSON, Prometheus text, JSONL.

* :func:`to_chrome_trace` produces the Trace Event Format consumed by
  Perfetto / ``chrome://tracing``: phases become complete (``X``)
  duration events on one track per core, and the cache/DRAM/prefetch
  batch streams become cumulative counter (``C``) tracks.
* :func:`to_prometheus` renders a collector summary in the Prometheus
  text exposition format (counters and gauges with labels).
* :func:`to_jsonl` writes the raw event stream one JSON object per
  line — the lossless form, for ad-hoc analysis.
* :func:`measurement_to_dict` is the machine-readable form of a
  :class:`~repro.measure.runner.Measurement` used by ``--json`` CLI
  output; it embeds the trace summary when one was collected.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Iterable, List, Optional

from ..obs.metrics import escape_help, format_labels, format_value
from .events import (
    CACHE,
    COUNTERS,
    DRAM,
    MARK,
    PHASE,
    PREFETCH,
    SWEEP,
    TraceEvent,
)

#: counter series exported per cache batch event
_CACHE_SERIES = ("l1_hits", "l2_hits", "l3_hits", "dram_reads",
                 "l1_evictions", "l2_evictions", "l3_evictions",
                 "tlb_misses")

#: synthetic track ids for events not owned by a core: machine-scope
#: events (``core < 0``: sweep phases, PMU snapshots, marks) and the
#: per-window timeline counter tracks.  Large so they sort after the
#: real cores in viewers that fall back to tid order.
_MACHINE_TID = 10_000
_TIMELINE_TID = 10_001

#: per-window timeline counter tracks: Perfetto track name -> list of
#: (series label in the track, derived key on the window)
_TIMELINE_TRACKS = (
    ("timeline.dram_bw_bpc", (("read", "dram_read_bpc"),
                              ("write", "dram_write_bpc"))),
    ("timeline.hit_rate", (("l1", "l1_hit_rate"),
                           ("l2", "l2_hit_rate"),
                           ("l3", "l3_hit_rate"))),
    ("timeline.ipc", (("ipc", "ipc"),)),
    ("timeline.flops_per_cycle", (("flops", "flops_per_cycle"),)),
    ("timeline.prefetch", (("accuracy", "prefetch_accuracy"),
                           ("coverage", "prefetch_coverage"))),
)


def _cycles_to_us(cycles: float, frequency_hz: float) -> float:
    return cycles / frequency_hz * 1e6


def _thread_meta(tid: int, name: str) -> List[dict]:
    """thread_name + thread_sort_index metadata pair for one track."""
    return [
        {"ph": "M", "name": "thread_name", "pid": 0, "tid": tid,
         "args": {"name": name}},
        {"ph": "M", "name": "thread_sort_index", "pid": 0, "tid": tid,
         "args": {"sort_index": tid}},
    ]


def _timeline_counter_events(timeline, frequency_hz: float) -> List[dict]:
    """Per-window counter ("C") samples for each timeline track.

    One sample at each window start plus a closing sample at ``t_end``
    holding the last window's value, so Perfetto's area rendering spans
    the final (possibly partial) window instead of dropping to zero at
    its left edge.  ``None`` series values (undefined rates) are
    skipped per-sample.
    """
    out: List[dict] = []
    if not timeline.windows:
        return out
    for track, series in _TIMELINE_TRACKS:
        samples = []
        for window in timeline.windows:
            args = {}
            for label, key in series:
                value = window.derived.get(key)
                if isinstance(value, (int, float)) and math.isfinite(value):
                    args[label] = value
            if args:
                samples.append((window.start, args))
        if not samples:
            continue
        for ts, args in samples:
            out.append({
                "ph": "C", "name": track, "cat": "timeline",
                "pid": 0, "tid": _TIMELINE_TID,
                "ts": _cycles_to_us(ts, frequency_hz), "args": args,
            })
        out.append({
            "ph": "C", "name": track, "cat": "timeline",
            "pid": 0, "tid": _TIMELINE_TID,
            "ts": _cycles_to_us(timeline.t_end, frequency_hz),
            "args": dict(samples[-1][1]),
        })
    return out


def to_chrome_trace(events: Iterable[TraceEvent],
                    frequency_hz: float = 1e9,
                    machine_name: str = "repro",
                    timeline=None) -> dict:
    """Trace Event Format document (load in Perfetto / chrome://tracing).

    Timestamps are converted from cycles to microseconds at
    ``frequency_hz``.  Batch-level events are folded into cumulative
    counter tracks; PMU snapshots and marks become instant events.
    Machine-scope events (no owning core) land on a dedicated
    "machine" track rather than masquerading as core 0.

    Pass a :class:`~repro.trace.timeline.Timeline` as ``timeline`` to
    add per-window counter tracks (DRAM bandwidth, hit rates, IPC,
    flops/cycle, prefetch quality) that render as area charts under the
    phase spans.
    """
    out: List[dict] = [{
        "ph": "M", "name": "process_name", "pid": 0, "tid": 0,
        "args": {"name": machine_name},
    }]
    counters: Dict[str, Dict[str, float]] = {}
    seen_cores = set()
    saw_machine_scope = False
    for event in events:
        ts = _cycles_to_us(event.ts, frequency_hz)
        if event.core >= 0:
            tid = event.core
            if event.core not in seen_cores:
                seen_cores.add(event.core)
                out.extend(_thread_meta(event.core, f"core {event.core}"))
        else:
            tid = _MACHINE_TID
            if not saw_machine_scope:
                saw_machine_scope = True
                out.extend(_thread_meta(_MACHINE_TID, "machine"))
        if event.kind in (PHASE, SWEEP):
            out.append({
                "ph": "X", "name": event.name, "cat": event.kind,
                "pid": 0, "tid": tid, "ts": ts,
                "dur": _cycles_to_us(event.dur, frequency_hz),
                "args": event.args,
            })
        elif event.kind in (CACHE, DRAM, PREFETCH):
            track = f"{event.kind}.{event.name}"
            running = counters.setdefault(track, {})
            for key, value in event.args.items():
                if isinstance(value, (int, float)):
                    running[key] = running.get(key, 0) + value
            if running:
                out.append({
                    "ph": "C", "name": track, "cat": event.kind,
                    "pid": 0, "tid": tid, "ts": ts,
                    "args": dict(running),
                })
        elif event.kind in (COUNTERS, MARK):
            out.append({
                "ph": "i", "name": event.name, "cat": event.kind,
                "pid": 0, "tid": tid, "ts": ts, "s": "g",
                "args": event.args,
            })
    if timeline is not None:
        out.extend(_thread_meta(_TIMELINE_TID, "timeline"))
        out.extend(_timeline_counter_events(timeline, frequency_hz))
    return {"displayTimeUnit": "ms", "traceEvents": out}


def _strict_json(value):
    """Replace non-finite floats with their string spelling.

    ``json.dumps`` would emit bare ``NaN``/``Infinity`` — tokens the
    JSON grammar does not define, which strict consumers (and most
    non-Python tooling) reject.  A corrupted metric must not corrupt
    the whole artifact line.
    """
    if isinstance(value, dict):
        return {k: _strict_json(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_strict_json(v) for v in value]
    if isinstance(value, float) and not math.isfinite(value):
        return repr(value)
    return value


def to_jsonl(events: Iterable[TraceEvent]) -> str:
    """One JSON object per line, in emission order (lossless for every
    finite value; non-finite floats become strings — see
    :func:`_strict_json`)."""
    return "\n".join(
        json.dumps(_strict_json(e.to_dict()), sort_keys=True)
        for e in events
    )


def to_prometheus(summary: dict, prefix: str = "repro") -> str:
    """Prometheus text exposition of a collector summary.

    Escaping, label formatting and non-finite value spellings are the
    shared helpers from :mod:`repro.obs.metrics`, so this exposition
    and the metrics registry's render identically conformant text.
    Returns the empty string for an empty summary (a valid exposition),
    never a bare newline.
    """
    lines: List[str] = []

    def metric(name: str, kind: str, help_text: str,
               samples: List) -> None:
        if not samples:
            return
        lines.append(f"# HELP {prefix}_{name} {escape_help(help_text)}")
        lines.append(f"# TYPE {prefix}_{name} {kind}")
        for labels, value in samples:
            lines.append(f"{prefix}_{name}{format_labels(labels)} "
                         f"{format_value(value)}")

    metric("phase_count", "gauge", "Measured phases in the trace",
           [({}, summary.get("phase_count", 0))])
    metric("cycles_total", "counter", "Cycles across measured phases",
           [({}, summary.get("total_cycles", 0.0))])
    metric("bound_cycles_total", "counter",
           "Throughput-bound cycles attributed to each binding constraint",
           [({"bound": b}, c)
            for b, c in sorted(summary.get("bound_cycles", {}).items())])
    metric("cache_events_total", "counter",
           "Functional cache/TLB event counts",
           [({"event": k}, v)
            for k, v in sorted(summary.get("cache", {}).items())])
    dram = summary.get("dram", {})
    metric("dram_lines_total", "counter", "IMC-visible 64B line transfers",
           [({"dir": "read"}, dram.get("read_lines", 0)),
            ({"dir": "write"}, dram.get("write_lines", 0))])
    metric("prefetch_total", "counter", "Per-engine prefetch counters",
           [({"engine": engine, "kind": k}, stats.get(k, 0))
            for engine, stats in sorted(
                summary.get("prefetch_engines", {}).items())
            for k in ("issued", "useful")])
    reissue = summary.get("reissue", {})
    metric("reissue_slots_total", "counter",
           "FP re-dispatch slots (the W-overcount mechanism)",
           [({}, reissue.get("slots", 0))])
    metric("reissue_overcounted_flops_total", "counter",
           "Counted flops attributable purely to FP reissue",
           [({}, reissue.get("overcounted_flops", 0))])
    metric("bandwidth_utilization", "gauge",
           "Cycle-weighted achieved/roof bandwidth per memory level",
           [({"level": level}, value)
            for level, value in sorted(
                (summary.get("bandwidth_utilization") or {}).items())
            if value is not None])
    mlp = summary.get("avg_outstanding_misses")
    if mlp is not None:
        metric("avg_outstanding_misses", "gauge",
               "Average outstanding demand misses (MLP actually used)",
               [({}, mlp)])
    sweep = summary.get("sweep", {})
    if sweep:
        metric("sweep_points_total", "counter",
               "Sweep-plan points by outcome (hit=cache replay, "
               "miss=simulated, corrupt=bad entry re-simulated)",
               [({"outcome": "hit"}, sweep.get("hits", 0)),
                ({"outcome": "miss"}, sweep.get("misses", 0)),
                ({"outcome": "corrupt"}, sweep.get("corrupt", 0))])
        metric("sweep_cache_hit_rate", "gauge",
               "Fraction of sweep points served from the result cache",
               [({}, sweep.get("hit_rate", 0.0))])
        metric("sweep_elapsed_seconds", "gauge",
               "Wall time the sweep executor spent on the plan",
               [({}, sweep.get("elapsed_seconds", 0.0))])
    workers = summary.get("workers") or []
    if workers:
        # worker rows come from the merged distributed-telemetry doc
        # (repro.obs.remote.merge_run_telemetry); label values go
        # through the same escape helpers as every other series here
        metric("sweep_worker_points_total", "counter",
               "Sweep points simulated, by worker process",
               [({"worker": w.get("pid", 0)}, w.get("points", 0))
                for w in workers])
        metric("sweep_worker_busy_seconds_total", "counter",
               "Wall time spent simulating sweep points, by worker "
               "process",
               [({"worker": w.get("pid", 0)}, w.get("busy_seconds", 0.0))
                for w in workers])
        metric("sweep_worker_utilization", "gauge",
               "Fraction of the sweep wall time each worker spent busy",
               [({"worker": w.get("pid", 0)}, w.get("utilization", 0.0))
                for w in workers if w.get("utilization") is not None])
    plan_cache = summary.get("plan_cache", {})
    if plan_cache:
        metric("plan_cache_lookups_total", "counter",
               "Compile-tier plan-cache lookups by outcome",
               [({"outcome": "hit"}, plan_cache.get("hits", 0)),
                ({"outcome": "miss"}, plan_cache.get("misses", 0))])
        metric("plan_cache_built_total", "counter",
               "Plan-cache compile work by unit (segments, lines)",
               [({"unit": "segments"}, plan_cache.get("built_segments", 0)),
                ({"unit": "lines"}, plan_cache.get("built_lines", 0))])
        metric("plan_cache_flushes_total", "counter",
               "Whole-cache flushes forced by the line-count bound",
               [({}, plan_cache.get("flushes", 0))])
        metric("plan_cache_hit_rate", "gauge",
               "Fraction of plan lookups served from the compile-tier "
               "cache",
               [({}, plan_cache.get("hit_rate", 0.0))])
    return "\n".join(lines) + ("\n" if lines else "")


def _summary_to_dict(summary) -> Optional[dict]:
    if summary is None:
        return None
    return {
        "median": summary.median,
        "mean": summary.mean,
        "min": summary.minimum,
        "max": summary.maximum,
        "count": summary.count,
        "spread": summary.spread,
    }


def measurement_to_dict(m) -> dict:
    """JSON-ready document for one Measurement (CLI ``--json`` output)."""
    doc = {
        "kernel": m.kernel,
        "n": m.n,
        "threads": m.threads,
        "protocol": m.protocol,
        "machine": m.machine,
        "reps": m.reps,
        "work_flops": m.work_flops,
        "true_flops": m.true_flops,
        "work_overcount": m.work_overcount,
        "traffic_bytes": m.traffic_bytes,
        "compulsory_bytes": m.compulsory_bytes,
        "traffic_ratio": m.traffic_ratio,
        "llc_bytes": m.llc_bytes,
        "level_bytes": m.level_bytes,
        "runtime_seconds": m.runtime_seconds,
        "performance_flops_per_s": m.performance,
        "intensity_flops_per_byte": m.intensity,
        "summaries": {
            "work": _summary_to_dict(m.work_summary),
            "traffic": _summary_to_dict(m.traffic_summary),
            "runtime": _summary_to_dict(m.runtime_summary),
        },
    }
    trace = getattr(m, "trace", None)
    if trace is not None:
        doc["trace"] = trace.summary()
    return doc
