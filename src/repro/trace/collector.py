"""Trace collection and per-phase / per-kernel summarisation.

A :class:`TraceCollector` is a sink (attach it to a machine's
:class:`~repro.trace.bus.TraceBus`) that keeps the raw event stream
*and* folds phase events into :class:`PhaseRecord` rows with derived
metrics:

* achieved vs. roof bandwidth per memory level (L2/L3 from the cache
  geometry, DRAM against the core's bandwidth share during the phase);
* the reissue-overcount attribution (how many counted flops each phase
  contributed purely through FP µop re-dispatch);
* memory-level-parallelism use (average outstanding demand misses
  implied by the exposed-latency term).

When the measurement runner brackets the measured kernel execution with
``measured:begin`` / ``measured:end`` marks, summaries are restricted
to phases inside the region; without marks every phase counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .events import CACHE, DRAM, MARK, PHASE, PREFETCH, TraceEvent

#: bound names in reporting order (mirrors the timing model)
BOUND_ORDER = (
    "fp_issue",
    "mem_issue",
    "dependency_chain",
    "l2_bandwidth",
    "l3_bandwidth",
    "dram_bandwidth",
)


@dataclass
class PhaseRecord:
    """One phase event, unpacked, with derived metrics attached."""

    name: str
    core: int
    ts: float
    cycles: float
    dominant: str
    bounds: Dict[str, float]
    trips: int
    batch: Dict[str, int]
    reissue_slots: int = 0
    reissue_flops: int = 0
    measured: bool = True
    derived: Dict[str, float] = field(default_factory=dict)


def _phase_derived(cycles: float, batch: Dict[str, int],
                   args: Dict[str, object],
                   line_bytes: int,
                   l2_roof_bpc: Optional[float],
                   l3_roof_bpc: Optional[float]) -> Dict[str, float]:
    """Bandwidth/MLP metrics for one phase."""
    derived: Dict[str, float] = {}
    if cycles <= 0:
        return derived
    l2_bpc = batch.get("l2_hits", 0) * line_bytes / cycles
    l3_bpc = batch.get("l3_hits", 0) * line_bytes / cycles
    dram_lines = (
        batch.get("dram_reads", 0)
        + batch.get("writebacks", 0)
        + batch.get("nt_lines", 0)
        + batch.get("hw_prefetch_dram_reads", 0)
    )
    dram_bpc = dram_lines * line_bytes / cycles
    derived["achieved_l2_bpc"] = l2_bpc
    derived["achieved_l3_bpc"] = l3_bpc
    derived["achieved_dram_bpc"] = dram_bpc
    if l2_roof_bpc:
        derived["l2_utilization"] = l2_bpc / l2_roof_bpc
    if l3_roof_bpc:
        derived["l3_utilization"] = l3_bpc / l3_roof_bpc
    share = args.get("dram_bpc")
    if share:
        derived["dram_utilization"] = dram_bpc / float(share)
    exposed = float(args.get("bounds", {}).get("exposed_latency", 0.0))
    derived["exposed_fraction"] = exposed / cycles
    mlp = args.get("mlp")
    if mlp:
        # exposed = serial_latency / mlp  =>  avg outstanding misses
        derived["avg_outstanding_misses"] = exposed * float(mlp) / cycles
    return derived


class TraceCollector:
    """Sink that accumulates events and produces kernel/phase summaries.

    ``machine`` (optional) supplies the cache geometry used for the
    per-level roof comparisons; without it the absolute achieved
    bandwidths are still derived, only the utilisation ratios are
    omitted.
    """

    def __init__(self, machine=None, keep_events: bool = True) -> None:
        self.events: List[TraceEvent] = []
        self.phases: List[PhaseRecord] = []
        self._keep_events = keep_events
        self._in_measured = False
        self._saw_marks = False
        self._line_bytes = 64
        self._l2_roof_bpc: Optional[float] = None
        self._l3_roof_bpc: Optional[float] = None
        self.frequency_hz: Optional[float] = None
        self.machine_name: Optional[str] = None
        if machine is not None:
            hier = machine.spec.hierarchy
            self._line_bytes = hier.line_bytes
            self._l2_roof_bpc = hier.l2.bytes_per_cycle
            self._l3_roof_bpc = hier.l3.bytes_per_cycle
            self.frequency_hz = machine.spec.base_hz
            self.machine_name = machine.spec.name

    # ------------------------------------------------------------------
    # sink interface
    # ------------------------------------------------------------------
    def emit(self, event: TraceEvent) -> None:
        if self._keep_events:
            self.events.append(event)
        if event.kind == PHASE:
            args = event.args
            batch = dict(args.get("batch", {}))
            self.phases.append(PhaseRecord(
                name=event.name,
                core=event.core,
                ts=event.ts,
                cycles=event.dur,
                dominant=str(args.get("dominant", "")),
                bounds=dict(args.get("bounds", {})),
                trips=int(args.get("trips", 0)),
                batch=batch,
                reissue_slots=int(args.get("reissue_slots", 0)),
                reissue_flops=int(args.get("reissue_flops", 0)),
                measured=self._in_measured or not self._saw_marks,
                derived=_phase_derived(
                    event.dur, batch, args, self._line_bytes,
                    self._l2_roof_bpc, self._l3_roof_bpc,
                ),
            ))
        elif event.kind == MARK:
            if event.name == "measured:begin":
                self._saw_marks = True
                self._in_measured = True
                # phases recorded before the first mark were setup work
                for record in self.phases:
                    record.measured = False
            elif event.name == "measured:end":
                self._in_measured = False

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def measured_phases(self) -> List[PhaseRecord]:
        if not self._saw_marks:
            return list(self.phases)
        return [p for p in self.phases if p.measured]

    def dominant_cycles(self) -> Dict[str, float]:
        """Throughput-bound cycles attributed to each binding constraint."""
        out: Dict[str, float] = {}
        for p in self.measured_phases():
            if p.dominant:
                out[p.dominant] = out.get(p.dominant, 0.0) + max(
                    p.cycles - p.bounds.get("exposed_latency", 0.0), 0.0
                )
        return out

    def _batch_totals(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for p in self.measured_phases():
            for key, value in p.batch.items():
                totals[key] = totals.get(key, 0) + int(value)
        return totals

    def _latest_prefetch_engines(self) -> Dict[str, dict]:
        """Last cumulative per-engine counters seen on the stream."""
        engines: Dict[str, dict] = {}
        for event in self.events:
            if event.kind == PREFETCH:
                for kind, stats in event.args.get("engines", {}).items():
                    engines[kind] = dict(stats)
        return engines

    def summary(self) -> dict:
        """Aggregate, JSON-ready view of the (measured) trace."""
        phases = self.measured_phases()
        total_cycles = sum(p.cycles for p in phases)
        bounds = self.dominant_cycles()
        batch = self._batch_totals()
        line = self._line_bytes
        dram_reads = (batch.get("dram_reads", 0)
                      + batch.get("hw_prefetch_dram_reads", 0))
        dram_writes = batch.get("writebacks", 0) + batch.get("nt_lines", 0)

        def util(key: str) -> Optional[float]:
            weights = [(p.derived.get(key), p.cycles) for p in phases
                       if key in p.derived]
            total = sum(w for _v, w in weights)
            if not total:
                return None
            return sum(v * w for v, w in weights) / total

        return {
            "machine": self.machine_name,
            "phase_count": len(phases),
            "event_count": len(self.events),
            "total_cycles": total_cycles,
            "bound_cycles": bounds,
            "dominant_bound": (max(bounds, key=bounds.get) if bounds else None),
            "cache": batch,
            "dram": {
                "read_lines": dram_reads,
                "write_lines": dram_writes,
                "bytes": (dram_reads + dram_writes) * line,
            },
            "prefetch_engines": self._latest_prefetch_engines(),
            "reissue": {
                "slots": sum(p.reissue_slots for p in phases),
                "overcounted_flops": sum(p.reissue_flops for p in phases),
            },
            "bandwidth_utilization": {
                "l2": util("l2_utilization"),
                "l3": util("l3_utilization"),
                "dram": util("dram_utilization"),
            },
            "avg_outstanding_misses": util("avg_outstanding_misses"),
        }

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def phase_table(self) -> str:
        """Per-phase cycle-attribution table (aggregated by phase name)."""
        phases = self.measured_phases()
        groups: Dict[str, List[PhaseRecord]] = {}
        for p in phases:
            groups.setdefault(p.name, []).append(p)
        total = sum(p.cycles for p in phases) or 1.0
        header = (f"{'phase':<22} {'count':>6} {'cycles':>12} {'share':>6} "
                  f"{'dominant bound':<17} {'L2%':>5} {'L3%':>5} {'DRAM%':>6} "
                  f"{'MLP':>5}")
        lines = [header, "-" * len(header)]

        def wavg(records: List[PhaseRecord], key: str) -> Optional[float]:
            weights = [(r.derived.get(key), r.cycles) for r in records
                       if key in r.derived]
            weight = sum(w for _v, w in weights)
            if not weight:
                return None
            return sum(v * w for v, w in weights) / weight

        def pct(records: List[PhaseRecord], key: str) -> str:
            value = wavg(records, key)
            return "-" if value is None else f"{100.0 * value:.0f}"

        for name in sorted(groups, key=lambda g: -sum(r.cycles for r in groups[g])):
            records = groups[name]
            cycles = sum(r.cycles for r in records)
            dominant: Dict[str, float] = {}
            for r in records:
                dominant[r.dominant] = dominant.get(r.dominant, 0.0) + r.cycles
            top = max(dominant, key=dominant.get)
            mlp = wavg(records, "avg_outstanding_misses")
            lines.append(
                f"{name:<22} {len(records):>6} {cycles:>12.0f} "
                f"{cycles / total:>6.0%} {top:<17} "
                f"{pct(records, 'l2_utilization'):>5} "
                f"{pct(records, 'l3_utilization'):>5} "
                f"{pct(records, 'dram_utilization'):>6} "
                f"{'-' if mlp is None else f'{mlp:.1f}':>5}"
            )
        return "\n".join(lines)

    def bound_attribution(self) -> str:
        """Aggregate 'which resource bound the run' rendering."""
        bounds = self.dominant_cycles()
        total = sum(bounds.values())
        if not total:
            return "bound attribution: no measured phases"
        lines = ["bound attribution (throughput-bound cycles):"]
        for bound in BOUND_ORDER:
            cycles = bounds.get(bound, 0.0)
            if cycles:
                lines.append(f"  {bound:<18} {cycles:>12.0f}  "
                             f"({cycles / total:.0%})")
        return "\n".join(lines)
