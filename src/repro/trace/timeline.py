"""Windowed timeline profiling: fixed-cycle-window time series.

The aggregate (I, P) point of a measurement hides *when* traffic
happens — the cold-start transient, the streaming steady state, the
cache-spill phase.  A :class:`TimelineSampler` is a trace-bus sink that
bins execution into fixed cycle windows and derives per-window series:
DRAM read/write bandwidth, per-level hit rates, IPC, issued flops,
prefetch accuracy/coverage, and the per-window operational intensity
I(t) and performance P(t) that make up a roofline *trajectory* (see
:mod:`repro.trace.trajectory`).

Binning rules (the invariants ``tests/trace`` pins down):

* windows are ``[t0 + k*w, t0 + (k+1)*w)`` on the TSC timeline, where
  ``t0`` is the start of the measured region and ``w`` the configured
  width; the final window is *partial* — it ends at the last phase's
  end, and rate denominators use its actual covered width;
* a phase straddling a boundary has its duration split exactly by
  overlap, and its integer counters split proportionally using
  cumulative (largest-remainder) rounding, so **per-window counter
  sums reconcile with the aggregate totals exactly** — the same totals
  the PMU/IMC counters and the conformance oracle validate;
* a zero-duration phase lands whole in the window containing its
  timestamp.

Counters come from ``phase`` events only (their ``args`` carry the
functional batch counts, retired instructions, and issued flops), never
from the separate ``cache``/``dram``/``prefetch`` batch events — those
are stamped at phase *start* and would double-count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import TimelineError
from .events import MARK, PHASE, TraceEvent

#: integer counters carried per window, in reporting order.  The batch
#: keys mirror :meth:`repro.memory.hierarchy.BatchStats.as_dict`;
#: ``instructions``/``flops``/``counted_flops``/``reissue_slots`` come
#: from the interpreter's phase attribution (``counted_flops`` is what
#: the FP PMU events see: issued flops plus the reissue overcount).
COUNTER_KEYS: Tuple[str, ...] = (
    "accesses", "l1_hits", "l2_hits", "l3_hits",
    "dram_reads", "writebacks", "nt_lines",
    "l1_evictions", "l2_evictions", "l3_evictions",
    "sw_prefetches", "hw_prefetch_issued", "hw_prefetch_dram_reads",
    "prefetch_useful", "remote_dram_lines", "flushes",
    "tlb_misses", "tlb_walk_cycles",
    "instructions", "flops", "counted_flops", "reissue_slots",
)

#: derived per-window series, in reporting/CSV order
DERIVED_KEYS: Tuple[str, ...] = (
    "dram_read_bpc", "dram_write_bpc", "dram_bpc",
    "l1_hit_rate", "l2_hit_rate", "l3_hit_rate",
    "ipc", "flops_per_cycle",
    "prefetch_accuracy", "prefetch_coverage",
    "intensity", "performance",
)


@dataclass(frozen=True)
class TimelineConfig:
    """How to window a trace.

    ``window_cycles`` is the bin width on the TSC timeline;
    ``measured_only`` restricts the timeline to the region between the
    runner's ``measured:begin``/``measured:end`` marks when they are
    present (matching :class:`~repro.trace.collector.TraceCollector`).
    """

    window_cycles: float
    measured_only: bool = True

    def __post_init__(self) -> None:
        width = self.window_cycles
        if not isinstance(width, (int, float)) or not math.isfinite(width):
            raise TimelineError(
                f"window width must be a finite cycle count, got {width!r}"
            )
        if width <= 0:
            raise TimelineError(
                f"window width must be positive, got {width:g} cycles"
            )


@dataclass
class TimelineWindow:
    """One fixed-width (or partial final) window of the timeline."""

    index: int
    #: absolute TSC cycle bounds; ``end - start`` is the covered width
    #: (smaller than the configured width only for the final window)
    start: float
    end: float
    #: cycles of phase execution overlapping this window, summed over
    #: cores (can exceed the width on multi-core runs)
    busy_cycles: float = 0.0
    counters: Dict[str, int] = field(default_factory=dict)
    derived: Dict[str, Optional[float]] = field(default_factory=dict)

    @property
    def width(self) -> float:
        return self.end - self.start

    @property
    def dram_read_lines(self) -> int:
        return (self.counters.get("dram_reads", 0)
                + self.counters.get("hw_prefetch_dram_reads", 0))

    @property
    def dram_write_lines(self) -> int:
        return (self.counters.get("writebacks", 0)
                + self.counters.get("nt_lines", 0))

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "start": self.start,
            "end": self.end,
            "busy_cycles": self.busy_cycles,
            "counters": dict(self.counters),
            "derived": dict(self.derived),
        }


@dataclass
class _PhaseEntry:
    """One phase event, reduced to what binning needs."""

    ts: float
    dur: float
    core: int
    counters: Dict[str, int]
    measured: bool = True


def _split_counter(total: int, fractions: Sequence[float]) -> List[int]:
    """Split ``total`` over bins proportionally to ``fractions``.

    Cumulative rounding: bin *k* receives ``round(total * cum_k) -
    round(total * cum_{k-1})`` and the final bin takes the remainder,
    so the parts always sum to ``total`` exactly regardless of
    floating-point error in the fractions.
    """
    parts: List[int] = []
    allocated = 0
    cum = 0.0
    last = len(fractions) - 1
    for k, fraction in enumerate(fractions):
        if k == last:
            parts.append(total - allocated)
            break
        cum += fraction
        target = int(round(total * cum))
        target = min(max(target, allocated), total)
        parts.append(target - allocated)
        allocated = target
    return parts


class Timeline:
    """Per-window series derived from one trace's phase stream."""

    def __init__(self, windows: List[TimelineWindow], window_cycles: float,
                 t0: float, t_end: float, line_bytes: int = 64,
                 frequency_hz: Optional[float] = None,
                 machine_name: Optional[str] = None) -> None:
        self.windows = windows
        self.window_cycles = window_cycles
        self.t0 = t0
        self.t_end = t_end
        self.line_bytes = line_bytes
        self.frequency_hz = frequency_hz
        self.machine_name = machine_name

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def span(self) -> float:
        return self.t_end - self.t0

    def __len__(self) -> int:
        return len(self.windows)

    def totals(self) -> Dict[str, int]:
        """Aggregate counters — by construction these equal the phase
        stream's (and therefore the PMU/IMC window's) totals exactly."""
        totals = {key: 0 for key in COUNTER_KEYS}
        for window in self.windows:
            for key, value in window.counters.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def series(self, key: str) -> List[Optional[float]]:
        """One per-window column, counter or derived."""
        if key in COUNTER_KEYS:
            return [float(w.counters.get(key, 0)) for w in self.windows]
        if key in DERIVED_KEYS:
            return [w.derived.get(key) for w in self.windows]
        raise TimelineError(f"unknown timeline series {key!r}")

    # ------------------------------------------------------------------
    # rendering / export
    # ------------------------------------------------------------------
    def to_csv(self) -> str:
        """Per-window CSV: bounds, raw counters, derived series."""
        header = (["window", "start_cycle", "end_cycle", "busy_cycles"]
                  + list(COUNTER_KEYS) + list(DERIVED_KEYS))
        rows = [",".join(header)]
        for w in self.windows:
            cells: List[str] = [str(w.index), f"{w.start:g}", f"{w.end:g}",
                                f"{w.busy_cycles:g}"]
            cells += [str(w.counters.get(key, 0)) for key in COUNTER_KEYS]
            for key in DERIVED_KEYS:
                value = w.derived.get(key)
                cells.append("" if value is None else f"{value:.6g}")
            rows.append(",".join(cells))
        return "\n".join(rows) + "\n"

    def to_json_doc(self) -> dict:
        return {
            "machine": self.machine_name,
            "frequency_hz": self.frequency_hz,
            "window_cycles": self.window_cycles,
            "t0": self.t0,
            "t_end": self.t_end,
            "span_cycles": self.span,
            "window_count": len(self.windows),
            "line_bytes": self.line_bytes,
            "totals": self.totals(),
            "windows": [w.to_dict() for w in self.windows],
        }

    def window_table(self, max_rows: int = 16) -> str:
        """Compact per-window text table (CLI / docs rendering)."""
        header = (f"{'win':>4} {'cycles':>22} {'busy':>8} {'R bpc':>6} "
                  f"{'W bpc':>6} {'L1%':>4} {'L2%':>4} {'L3%':>4} "
                  f"{'IPC':>5} {'F/cyc':>6} {'I [F/B]':>8}")
        lines = [header, "-" * len(header)]
        shown = self.windows
        skipped = 0
        if len(shown) > max_rows:
            skipped = len(shown) - max_rows
            shown = shown[:max_rows]

        def pct(value: Optional[float]) -> str:
            return "-" if value is None else f"{100.0 * value:.0f}"

        def num(value: Optional[float], fmt: str = ".2f") -> str:
            return "-" if value is None else format(value, fmt)

        for w in shown:
            d = w.derived
            intensity = d.get("intensity")
            lines.append(
                f"{w.index:>4} [{w.start:>9.0f},{w.end:>10.0f}) "
                f"{w.busy_cycles:>8.0f} {num(d.get('dram_read_bpc')):>6} "
                f"{num(d.get('dram_write_bpc')):>6} "
                f"{pct(d.get('l1_hit_rate')):>4} "
                f"{pct(d.get('l2_hit_rate')):>4} "
                f"{pct(d.get('l3_hit_rate')):>4} "
                f"{num(d.get('ipc')):>5} "
                f"{num(d.get('flops_per_cycle')):>6} "
                f"{'-' if intensity is None else f'{intensity:8.4f}'}"
            )
        if skipped:
            lines.append(f"... {skipped} more window(s)")
        return "\n".join(lines)

    def summary(self) -> dict:
        """Aggregate JSON-ready view (embedded by ``--json`` output)."""
        totals = self.totals()
        read_lines = totals["dram_reads"] + totals["hw_prefetch_dram_reads"]
        write_lines = totals["writebacks"] + totals["nt_lines"]
        peak_bpc = None
        peak_window = None
        for w in self.windows:
            bpc = w.derived.get("dram_bpc")
            if bpc is not None and (peak_bpc is None or bpc > peak_bpc):
                peak_bpc, peak_window = bpc, w.index
        return {
            "kind": "timeline",
            "machine": self.machine_name,
            "window_cycles": self.window_cycles,
            "window_count": len(self.windows),
            "span_cycles": self.span,
            "totals": totals,
            "dram": {
                "read_lines": read_lines,
                "write_lines": write_lines,
                "bytes": (read_lines + write_lines) * self.line_bytes,
            },
            "peak_dram_bpc": peak_bpc,
            "peak_dram_window": peak_window,
        }


def _derive(window: TimelineWindow, line_bytes: int,
            frequency_hz: Optional[float]) -> None:
    """Fill one window's derived series from its counters."""
    c = window.counters
    width = window.width
    derived: Dict[str, Optional[float]] = {}
    if width <= 0:
        window.derived = derived
        return
    read_bytes = window.dram_read_lines * line_bytes
    write_bytes = window.dram_write_lines * line_bytes
    derived["dram_read_bpc"] = read_bytes / width
    derived["dram_write_bpc"] = write_bytes / width
    derived["dram_bpc"] = (read_bytes + write_bytes) / width
    accesses = c.get("accesses", 0)
    l1_hits = c.get("l1_hits", 0)
    l1_misses = accesses - l1_hits
    l2_hits = c.get("l2_hits", 0)
    l2_misses = l1_misses - l2_hits
    # windowed rates are estimates (numerator and denominator are
    # rounded independently when a phase straddles a boundary) — clamp
    # to [0, 1] so a rounding artifact never reads as >100%
    def rate(num: int, den: int) -> Optional[float]:
        return min(max(num / den, 0.0), 1.0) if den > 0 else None

    derived["l1_hit_rate"] = rate(l1_hits, accesses)
    derived["l2_hit_rate"] = rate(l2_hits, l1_misses)
    derived["l3_hit_rate"] = rate(c.get("l3_hits", 0), l2_misses)
    derived["ipc"] = c.get("instructions", 0) / width
    flops = c.get("flops", 0)
    derived["flops_per_cycle"] = flops / width
    issued = c.get("hw_prefetch_issued", 0)
    derived["prefetch_accuracy"] = (
        c.get("prefetch_useful", 0) / issued if issued else None
    )
    derived["prefetch_coverage"] = (
        c.get("hw_prefetch_dram_reads", 0) / window.dram_read_lines
        if window.dram_read_lines else None
    )
    dram_bytes = read_bytes + write_bytes
    # the measured-intensity convention: traffic floored at one line so
    # cache-resident windows land far right instead of at infinity
    derived["intensity"] = (
        flops / max(dram_bytes, float(line_bytes)) if flops else None
    )
    derived["performance"] = (
        flops / width * frequency_hz if frequency_hz else None
    )
    window.derived = derived


def build_timeline(entries: Sequence[_PhaseEntry], config: TimelineConfig,
                   line_bytes: int = 64,
                   frequency_hz: Optional[float] = None,
                   machine_name: Optional[str] = None) -> Timeline:
    """Bin phase entries into a :class:`Timeline` (see module rules)."""
    if not entries:
        raise TimelineError(
            "trace contains no phase events to window — was the sampler "
            "attached while a program ran?"
        )
    t0 = min(e.ts for e in entries)
    t_end = max(e.ts + e.dur for e in entries)
    span = t_end - t0
    if span <= 0:
        raise TimelineError(
            "measured span is zero cycles; nothing to window"
        )
    width = float(config.window_cycles)
    if width > span:
        raise TimelineError(
            f"window of {width:g} cycles exceeds the measured execution "
            f"span of {span:g} cycles; choose a window <= the span"
        )
    count = int(math.ceil(span / width))
    # guard against float-edge spans like span == count*width exactly
    while t0 + (count - 1) * width >= t_end:
        count -= 1
    windows = [
        TimelineWindow(
            index=k,
            start=t0 + k * width,
            end=min(t0 + (k + 1) * width, t_end),
            counters={key: 0 for key in COUNTER_KEYS},
        )
        for k in range(count)
    ]

    def window_of(ts: float) -> int:
        return min(max(int((ts - t0) // width), 0), count - 1)

    for entry in entries:
        start, dur = entry.ts, entry.dur
        if dur <= 0:
            target = windows[window_of(start)]
            for key, value in entry.counters.items():
                target.counters[key] += value
            continue
        end = start + dur
        first = window_of(start)
        last = window_of(min(end, t_end) - 1e-9)
        if first == last:
            target = windows[first]
            target.busy_cycles += dur
            for key, value in entry.counters.items():
                target.counters[key] += value
            continue
        overlaps: List[float] = []
        for k in range(first, last + 1):
            w = windows[k]
            overlaps.append(min(end, w.end) - max(start, w.start))
            windows[k].busy_cycles += overlaps[-1]
        fractions = [o / dur for o in overlaps]
        for key, value in entry.counters.items():
            if not value:
                continue
            for k, part in enumerate(_split_counter(value, fractions)):
                if part:
                    windows[first + k].counters[key] += part

    for window in windows:
        _derive(window, line_bytes, frequency_hz)
    return Timeline(windows, width, t0, t_end, line_bytes=line_bytes,
                    frequency_hz=frequency_hz, machine_name=machine_name)


class TimelineSampler:
    """Trace-bus sink that collects phase entries for windowing.

    Leaner than :class:`~repro.trace.collector.TraceCollector`: it
    keeps one small record per phase event (no raw event retention, no
    derived per-phase metrics), so sampling overhead stays a small
    constant per phase — ``benchmarks/bench_s3_timeline.py`` pins the
    ratio against an untraced run.

    ``machine`` (optional) supplies line size, frequency, and name for
    the derived series; ``config`` is a :class:`TimelineConfig` or a
    bare window width in cycles.
    """

    def __init__(self, machine=None, config=None) -> None:
        if config is None:
            config = TimelineConfig(10_000.0)
        elif not isinstance(config, TimelineConfig):
            config = TimelineConfig(float(config))
        self.config = config
        self.entries: List[_PhaseEntry] = []
        self._in_measured = False
        self._saw_marks = False
        self.line_bytes = 64
        self.frequency_hz: Optional[float] = None
        self.machine_name: Optional[str] = None
        if machine is not None:
            self.line_bytes = machine.spec.hierarchy.line_bytes
            self.frequency_hz = machine.spec.base_hz
            self.machine_name = machine.spec.name

    # ------------------------------------------------------------------
    # sink interface
    # ------------------------------------------------------------------
    def emit(self, event: TraceEvent) -> None:
        kind = event.kind
        if kind == PHASE:
            args = event.args
            counters = dict(args.get("batch") or {})
            counters["instructions"] = int(args.get("instructions", 0))
            flops = int(args.get("flops", 0))
            reissue = int(args.get("reissue_flops", 0))
            counters["flops"] = flops
            counters["counted_flops"] = flops + reissue
            counters["reissue_slots"] = int(args.get("reissue_slots", 0))
            self.entries.append(_PhaseEntry(
                ts=event.ts, dur=event.dur, core=event.core,
                counters=counters,
                measured=self._in_measured or not self._saw_marks,
            ))
        elif kind == MARK:
            if event.name == "measured:begin":
                self._saw_marks = True
                self._in_measured = True
                for entry in self.entries:
                    entry.measured = False
            elif event.name == "measured:end":
                self._in_measured = False

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def measured_entries(self) -> List[_PhaseEntry]:
        if not self._saw_marks or not self.config.measured_only:
            return list(self.entries)
        return [e for e in self.entries if e.measured]

    def phase_span(self) -> Tuple[float, float]:
        """(t0, t_end) cycle bounds of the (measured) phase stream."""
        entries = self.measured_entries()
        if not entries:
            raise TimelineError(
                "trace contains no phase events to window — was the "
                "sampler attached while a program ran?"
            )
        return (min(e.ts for e in entries),
                max(e.ts + e.dur for e in entries))

    def timeline(self, config: Optional[TimelineConfig] = None) -> Timeline:
        """Window the collected phases (raises
        :class:`~repro.errors.TimelineError` on an empty trace or a
        window wider than the span)."""
        return build_timeline(
            self.measured_entries(), config or self.config,
            line_bytes=self.line_bytes, frequency_hz=self.frequency_hz,
            machine_name=self.machine_name,
        )

    def summary(self) -> dict:
        """JSON-ready aggregate (lets ``measurement_to_dict`` embed a
        timeline-sampled measurement like a collector-traced one)."""
        return self.timeline().summary()


def timeline_from_events(events, config,
                         machine=None) -> Timeline:
    """Build a :class:`Timeline` from an already-recorded event stream
    (e.g. a :class:`~repro.trace.collector.TraceCollector`'s
    ``events``): replays them through a fresh sampler."""
    sampler = TimelineSampler(machine, config)
    for event in events:
        sampler.emit(event)
    return sampler.timeline()
