"""Structured tracing and metrics for the simulated machine.

The layer has three parts:

* a zero-overhead-when-disabled event bus (:class:`TraceBus`) that the
  interpreter, memory hierarchy, prefetchers and PMU sessions emit
  :class:`TraceEvent` objects into;
* a collector (:class:`TraceCollector`) that folds the stream into
  per-phase records and per-kernel summaries with derived metrics;
* a windowed sampler (:class:`TimelineSampler`) that bins execution
  into fixed cycle windows and derives per-window series plus the
  roofline trajectory (:class:`RooflineTrajectory`);
* exporters for Chrome trace-event JSON (Perfetto), Prometheus text
  metrics, and JSON lines.

See ``docs/OBSERVABILITY.md`` for the full tour.
"""

from .bus import ListSink, NullSink, TraceBus
from .collector import BOUND_ORDER, PhaseRecord, TraceCollector
from .events import (
    CACHE,
    COUNTERS,
    DRAM,
    KINDS,
    MARK,
    PHASE,
    PREFETCH,
    TraceEvent,
)
from .export import (
    measurement_to_dict,
    to_chrome_trace,
    to_jsonl,
    to_prometheus,
)
from .timeline import (
    COUNTER_KEYS,
    DERIVED_KEYS,
    Timeline,
    TimelineConfig,
    TimelineSampler,
    TimelineWindow,
    timeline_from_events,
)
from .trajectory import RooflineTrajectory, TrajectoryPoint

__all__ = [
    "TraceBus",
    "TraceEvent",
    "TraceCollector",
    "PhaseRecord",
    "ListSink",
    "NullSink",
    "BOUND_ORDER",
    "PHASE",
    "CACHE",
    "DRAM",
    "PREFETCH",
    "COUNTERS",
    "MARK",
    "KINDS",
    "to_chrome_trace",
    "to_jsonl",
    "to_prometheus",
    "measurement_to_dict",
    "Timeline",
    "TimelineConfig",
    "TimelineSampler",
    "TimelineWindow",
    "timeline_from_events",
    "COUNTER_KEYS",
    "DERIVED_KEYS",
    "RooflineTrajectory",
    "TrajectoryPoint",
]
