"""Roofline trajectory: the (I, P) path a kernel traces over time.

A whole-run measurement collapses execution to a single point on the
roofline plane.  Windowing the same run (:mod:`repro.trace.timeline`)
yields one (I, P) coordinate per window — the *trajectory* that shows
the cold-start transient drifting right as reuse warms up, the
steady-state cluster, and any cache-spill excursion toward the
bandwidth roof.  Both roofline plotters overlay it: ``plot_svg`` as a
time-gradient polyline with start/end markers, ``plot_ascii`` as
sampled breadcrumb digits.

Distinct from :class:`repro.roofline.point.Trajectory`, which is a
*size sweep* (one aggregate point per problem size); this one is a
*time sweep* (one point per cycle window of a single run).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import TimelineError


@dataclass(frozen=True)
class TrajectoryPoint:
    """One window's roofline coordinate.

    ``intensity`` is flops over DRAM bytes (floored at one cache line,
    matching the measured-intensity convention), ``performance`` is
    flops/s at the machine's base frequency.
    """

    index: int
    t_start: float
    t_end: float
    intensity: float
    performance: float
    flops: int
    dram_bytes: int

    @property
    def t_mid(self) -> float:
        return 0.5 * (self.t_start + self.t_end)


@dataclass
class RooflineTrajectory:
    """Ordered (I, P) points of one run, in execution order."""

    label: str
    points: List[TrajectoryPoint]
    window_cycles: float
    frequency_hz: Optional[float] = None

    def __iter__(self):
        return iter(self.points)

    def __len__(self) -> int:
        return len(self.points)

    @classmethod
    def from_timeline(cls, timeline, label: str = "trajectory"
                      ) -> "RooflineTrajectory":
        """Project a :class:`~repro.trace.timeline.Timeline` onto the
        roofline plane.

        Windows with zero issued flops have no defined intensity and
        are skipped (a DRAM-only or idle window is invisible on a
        flops-per-second axis anyway); traffic is floored at one cache
        line so cache-resident windows land far right rather than at
        infinity.
        """
        if timeline.frequency_hz is None:
            raise TimelineError(
                "trajectory needs a machine frequency to place windows "
                "on the performance axis; build the timeline with a "
                "machine attached"
            )
        line = timeline.line_bytes
        points: List[TrajectoryPoint] = []
        for window in timeline.windows:
            flops = window.counters.get("flops", 0)
            if flops <= 0 or window.width <= 0:
                continue
            dram_bytes = (window.dram_read_lines
                          + window.dram_write_lines) * line
            points.append(TrajectoryPoint(
                index=window.index,
                t_start=window.start,
                t_end=window.end,
                intensity=flops / max(dram_bytes, line),
                performance=flops / window.width * timeline.frequency_hz,
                flops=flops,
                dram_bytes=dram_bytes,
            ))
        return cls(
            label=label,
            points=points,
            window_cycles=timeline.window_cycles,
            frequency_hz=timeline.frequency_hz,
        )

    def to_csv(self) -> str:
        """Per-point CSV (window index, cycle bounds, I, P, raw sums)."""
        rows = ["window,start_cycle,end_cycle,intensity_flops_per_byte,"
                "performance_flops_per_s,flops,dram_bytes"]
        for p in self.points:
            rows.append(
                f"{p.index},{p.t_start:g},{p.t_end:g},"
                f"{p.intensity:.6g},{p.performance:.6g},"
                f"{p.flops},{p.dram_bytes}"
            )
        return "\n".join(rows) + "\n"

    def to_json_doc(self) -> dict:
        return {
            "label": self.label,
            "window_cycles": self.window_cycles,
            "frequency_hz": self.frequency_hz,
            "points": [
                {
                    "window": p.index,
                    "t_start": p.t_start,
                    "t_end": p.t_end,
                    "intensity": p.intensity,
                    "performance": p.performance,
                    "flops": p.flops,
                    "dram_bytes": p.dram_bytes,
                }
                for p in self.points
            ],
        }
