"""Replacement policies for set-associative caches.

Policies operate on one cache set at a time.  Each policy owns a small
per-set state object created by :meth:`new_state`; the cache calls
:meth:`on_hit` / :meth:`on_fill` to record use and :meth:`victim` to pick
the way to evict.  LRU is the reference policy (and what the paper's
machines approximate); tree-PLRU, FIFO and a deterministic pseudo-random
policy exist for the replacement-policy ablation (experiment A1).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..errors import ConfigurationError


class ReplacementPolicy(ABC):
    """Strategy interface; implementations must be deterministic."""

    name = "abstract"

    @abstractmethod
    def new_state(self, assoc: int):
        """Fresh per-set metadata for a set with ``assoc`` ways."""

    @abstractmethod
    def on_hit(self, state, way: int) -> None:
        """Record a hit in ``way``."""

    @abstractmethod
    def on_fill(self, state, way: int) -> None:
        """Record a fill into ``way``."""

    @abstractmethod
    def victim(self, state, assoc: int) -> int:
        """Way to evict from a full set."""


class LruPolicy(ReplacementPolicy):
    """True least-recently-used via a recency list (most recent first)."""

    name = "lru"

    def new_state(self, assoc: int):
        return []

    def on_hit(self, state, way: int) -> None:
        state.remove(way)
        state.insert(0, way)

    def on_fill(self, state, way: int) -> None:
        if way in state:
            state.remove(way)
        state.insert(0, way)

    def victim(self, state, assoc: int) -> int:
        return state[-1]


class FifoPolicy(ReplacementPolicy):
    """First-in first-out: hits do not refresh recency."""

    name = "fifo"

    def new_state(self, assoc: int):
        return []

    def on_hit(self, state, way: int) -> None:
        pass

    def on_fill(self, state, way: int) -> None:
        if way in state:
            state.remove(way)
        state.insert(0, way)

    def victim(self, state, assoc: int) -> int:
        return state[-1]


class TreePlruPolicy(ReplacementPolicy):
    """Tree pseudo-LRU as used by real L1/L2 designs.

    The state is a list of tree bits; bit value 0 means "go left to find
    the pseudo-LRU way".  Requires power-of-two associativity.
    """

    name = "plru"

    def new_state(self, assoc: int):
        if assoc & (assoc - 1):
            raise ConfigurationError("tree-PLRU requires power-of-two associativity")
        return [0] * max(assoc - 1, 1)

    def _touch(self, bits, way: int, assoc: int) -> None:
        node = 0
        span = assoc
        offset = 0
        while span > 1:
            half = span // 2
            go_right = way >= offset + half
            # point the bit *away* from the touched way
            bits[node] = 0 if go_right else 1
            node = 2 * node + (2 if go_right else 1)
            if go_right:
                offset += half
            span = half

    def on_hit(self, state, way: int) -> None:
        self._touch(state, way, len(state) + 1)

    def on_fill(self, state, way: int) -> None:
        self._touch(state, way, len(state) + 1)

    def victim(self, state, assoc: int) -> int:
        node = 0
        span = assoc
        offset = 0
        while span > 1:
            half = span // 2
            go_right = state[node] == 1
            node = 2 * node + (2 if go_right else 1)
            if go_right:
                offset += half
            span = half
        return offset


class RandomPolicy(ReplacementPolicy):
    """Deterministic pseudo-random victim selection (xorshift LCG).

    Deterministic so experiments are reproducible run to run, which the
    measurement protocols rely on.
    """

    name = "random"

    def __init__(self, seed: int = 0x9E3779B9) -> None:
        self._state = seed & 0xFFFFFFFF

    def new_state(self, assoc: int):
        return None

    def on_hit(self, state, way: int) -> None:
        pass

    def on_fill(self, state, way: int) -> None:
        pass

    def victim(self, state, assoc: int) -> int:
        x = self._state
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        self._state = x
        return x % assoc


_POLICIES = {
    "lru": LruPolicy,
    "fifo": FifoPolicy,
    "plru": TreePlruPolicy,
    "random": RandomPolicy,
}


def make_policy(name: str) -> ReplacementPolicy:
    """Instantiate a policy by name (``lru``/``fifo``/``plru``/``random``)."""
    try:
        return _POLICIES[name]()
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown replacement policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from exc


def policy_names() -> list:
    """Names of all registered replacement policies."""
    return sorted(_POLICIES)
