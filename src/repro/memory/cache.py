"""Set-associative, write-back cache model at cache-line granularity.

The cache is *functional*: it tracks which lines are resident and dirty,
and produces exact hit/miss/eviction streams.  Timing is attributed by
the core's cycle model (:mod:`repro.cpu.core`), not here.

Two internal representations are used:

* an ordered-dict fast path for LRU (the common case on every preset —
  Python dicts preserve insertion order, giving O(1) recency updates),
* a generic ways-array representation driven by a
  :class:`~repro.memory.replacement.ReplacementPolicy` for the
  replacement-policy ablation.

Both expose identical behaviour for LRU, which the property-based tests
verify against each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple

from ..errors import ConfigurationError
from ..units import is_power_of_two, log2_int
from .replacement import ReplacementPolicy, make_policy


@dataclass
class CacheStats:
    """Cumulative event counts since construction or :meth:`reset`."""

    hits: int = 0
    misses: int = 0
    fills: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    invalidations: int = 0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.fills = 0
        self.evictions = 0
        self.dirty_evictions = 0
        self.invalidations = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and behaviour of one cache level."""

    name: str
    size_bytes: int
    line_bytes: int = 64
    assoc: int = 8
    policy: str = "lru"
    latency_cycles: int = 4
    bytes_per_cycle: float = 32.0

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0 or self.assoc <= 0:
            raise ConfigurationError(f"{self.name}: non-positive geometry")
        if self.size_bytes % (self.line_bytes * self.assoc):
            raise ConfigurationError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"line*assoc ({self.line_bytes}*{self.assoc})"
            )
        nsets = self.size_bytes // (self.line_bytes * self.assoc)
        if not is_power_of_two(nsets):
            raise ConfigurationError(
                f"{self.name}: set count {nsets} must be a power of two"
            )

    @property
    def nsets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.assoc)

    @property
    def nlines(self) -> int:
        return self.size_bytes // self.line_bytes

    def scaled(self, factor: float) -> "CacheConfig":
        """Geometry scaled by ``factor`` (keeps line size and assoc).

        Used by experiment presets to shrink machines so DRAM-resident
        working sets stay simulation-friendly; documented in DESIGN.md.
        """
        lines = max(int(self.nlines * factor), self.assoc)
        nsets = 1 << max((lines // self.assoc).bit_length() - 1, 0)
        size = nsets * self.assoc * self.line_bytes
        return CacheConfig(
            self.name,
            size,
            self.line_bytes,
            self.assoc,
            self.policy,
            self.latency_cycles,
            self.bytes_per_cycle,
        )


class Cache:
    """One cache level; see module docstring for design notes."""

    def __init__(self, config: CacheConfig,
                 policy: Optional[ReplacementPolicy] = None) -> None:
        self.config = config
        self.stats = CacheStats()
        self._set_mask = config.nsets - 1
        self._assoc = config.assoc
        use_fast_lru = policy is None and config.policy == "lru"
        self._fast = use_fast_lru
        if use_fast_lru:
            # per-set dict: line -> dirty flag; iteration order is recency
            # (first inserted == least recent after move-to-end updates).
            self._sets = [dict() for _ in range(config.nsets)]
        else:
            self._policy = policy or make_policy(config.policy)
            self._lines = [[None] * self._assoc for _ in range(config.nsets)]
            self._dirty = [[False] * self._assoc for _ in range(config.nsets)]
            self._pstate = [self._policy.new_state(self._assoc)
                            for _ in range(config.nsets)]

    # ------------------------------------------------------------------
    # shared state-transition accounting
    #
    # The two representations only *locate and move* lines; every
    # statistic is recorded by exactly one of the helpers below, so the
    # fast and generic paths cannot drift apart in their accounting
    # (the historical duplication hazard).
    # ------------------------------------------------------------------
    def _record_lookup(self, hit: bool) -> bool:
        if hit:
            self.stats.hits += 1
        else:
            self.stats.misses += 1
        return hit

    def _record_eviction(
        self, evicted: Optional[Tuple[int, bool]]
    ) -> Optional[Tuple[int, bool]]:
        if evicted is not None:
            self.stats.evictions += 1
            if evicted[1]:
                self.stats.dirty_evictions += 1
        return evicted

    def _record_invalidation(self, dirty: Optional[bool]) -> Optional[bool]:
        if dirty is not None:
            self.stats.invalidations += 1
        return dirty

    # ------------------------------------------------------------------
    # core operations
    # ------------------------------------------------------------------
    def lookup_update(self, line: int, mark_dirty: bool = False) -> bool:
        """Demand access: on hit, refresh recency (and dirty); no fill."""
        if self._fast:
            s = self._sets[line & self._set_mask]
            hit = line in s
            if hit:
                s[line] = s.pop(line) or mark_dirty
        else:
            hit = self._generic_lookup(line, mark_dirty)
        return self._record_lookup(hit)

    def _generic_lookup(self, line: int, mark_dirty: bool) -> bool:
        set_idx = line & self._set_mask
        lines = self._lines[set_idx]
        for way in range(self._assoc):
            if lines[way] == line:
                self._policy.on_hit(self._pstate[set_idx], way)
                if mark_dirty:
                    self._dirty[set_idx][way] = True
                return True
        return False

    def fill(self, line: int, dirty: bool = False) -> Optional[Tuple[int, bool]]:
        """Insert ``line``; returns ``(evicted_line, was_dirty)`` or None.

        Filling a line already present refreshes it (dirty flags OR).
        """
        self.stats.fills += 1
        if self._fast:
            s = self._sets[line & self._set_mask]
            if line in s:
                s[line] = s.pop(line) or dirty
                evicted = None
            else:
                evicted = None
                if len(s) >= self._assoc:
                    victim = next(iter(s))
                    evicted = (victim, s.pop(victim))
                s[line] = dirty
        else:
            evicted = self._generic_fill(line, dirty)
        return self._record_eviction(evicted)

    def _generic_fill(self, line: int, dirty: bool) -> Optional[Tuple[int, bool]]:
        set_idx = line & self._set_mask
        lines = self._lines[set_idx]
        state = self._pstate[set_idx]
        for way in range(self._assoc):
            if lines[way] == line:
                self._policy.on_fill(state, way)
                self._dirty[set_idx][way] = self._dirty[set_idx][way] or dirty
                return None
        for way in range(self._assoc):
            if lines[way] is None:
                lines[way] = line
                self._dirty[set_idx][way] = dirty
                self._policy.on_fill(state, way)
                return None
        way = self._policy.victim(state, self._assoc)
        evicted = (lines[way], self._dirty[set_idx][way])
        lines[way] = line
        self._dirty[set_idx][way] = dirty
        self._policy.on_fill(state, way)
        return evicted

    def mark_dirty(self, line: int) -> bool:
        """Set the dirty bit of a resident line without touching recency
        or hit/miss statistics (writeback absorption from an upper level).
        Returns False when the line is not resident."""
        if self._fast:
            s = self._sets[line & self._set_mask]
            if line in s:
                s[line] = True
                return True
            return False
        set_idx = line & self._set_mask
        lines = self._lines[set_idx]
        for way in range(self._assoc):
            if lines[way] == line:
                self._dirty[set_idx][way] = True
                return True
        return False

    def invalidate(self, line: int) -> Optional[bool]:
        """Drop ``line`` if present; returns its dirty flag, else None."""
        if self._fast:
            s = self._sets[line & self._set_mask]
            dirty = s.pop(line) if line in s else None
        else:
            dirty = self._generic_invalidate(line)
        return self._record_invalidation(dirty)

    def _generic_invalidate(self, line: int) -> Optional[bool]:
        set_idx = line & self._set_mask
        lines = self._lines[set_idx]
        for way in range(self._assoc):
            if lines[way] == line:
                lines[way] = None
                dirty = self._dirty[set_idx][way]
                self._dirty[set_idx][way] = False
                return dirty
        return None

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def contains(self, line: int) -> bool:
        """Non-mutating residency test (no recency update)."""
        if self._fast:
            return line in self._sets[line & self._set_mask]
        return line in self._lines[line & self._set_mask]

    def resident_lines(self) -> Iterator[int]:
        """All currently resident lines (test/diagnostic use)."""
        if self._fast:
            for s in self._sets:
                yield from s
        else:
            for lines in self._lines:
                for line in lines:
                    if line is not None:
                        yield line

    def dirty_lines(self) -> Iterator[int]:
        """All resident dirty lines."""
        if self._fast:
            for s in self._sets:
                for line, dirty in s.items():
                    if dirty:
                        yield line
        else:
            for set_idx, lines in enumerate(self._lines):
                for way, line in enumerate(lines):
                    if line is not None and self._dirty[set_idx][way]:
                        yield line

    def occupancy(self) -> int:
        """Number of resident lines."""
        return sum(1 for _ in self.resident_lines())

    def clear(self) -> None:
        """Drop all contents (dirty data is discarded, not written back)."""
        if self._fast:
            for s in self._sets:
                s.clear()
        else:
            for set_idx in range(self.config.nsets):
                self._lines[set_idx] = [None] * self._assoc
                self._dirty[set_idx] = [False] * self._assoc
                self._pstate[set_idx] = self._policy.new_state(self._assoc)

    def __repr__(self) -> str:
        c = self.config
        return (
            f"Cache({c.name}: {c.size_bytes} B, {c.assoc}-way, "
            f"{c.nsets} sets, {c.policy})"
        )
