"""Set-associative, write-back cache model at cache-line granularity.

The cache is *functional*: it tracks which lines are resident and dirty,
and produces exact hit/miss/eviction streams.  Timing is attributed by
the core's cycle model (:mod:`repro.cpu.core`), not here.

Three internal representations are used:

* ``dict`` — an ordered-dict fast path for LRU (the common case on
  every preset — Python dicts preserve insertion order, giving O(1)
  recency updates).  The batched datapath
  (:mod:`repro.engine.datapath`) inlines against this representation.
* ``ways`` — a generic ways-list representation driven by a
  :class:`~repro.memory.replacement.ReplacementPolicy` for the
  replacement-policy ablation.
* ``array`` — numpy-backed tag/dirty/recency arrays with the policy
  state flattened into per-set stamp or tree-bit rows; behaviourally
  identical to ``ways`` for every policy (hypothesis-verified in
  ``tests/memory/test_cache_array.py``).

All representations expose identical behaviour, which the
property-based tests verify against each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..obs.spans import SPANS
from ..units import is_power_of_two, log2_int
from .replacement import ReplacementPolicy, make_policy


@dataclass
class CacheStats:
    """Cumulative event counts since construction or :meth:`reset`."""

    hits: int = 0
    misses: int = 0
    fills: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    invalidations: int = 0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.fills = 0
        self.evictions = 0
        self.dirty_evictions = 0
        self.invalidations = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and behaviour of one cache level."""

    name: str
    size_bytes: int
    line_bytes: int = 64
    assoc: int = 8
    policy: str = "lru"
    latency_cycles: int = 4
    bytes_per_cycle: float = 32.0

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0 or self.assoc <= 0:
            raise ConfigurationError(f"{self.name}: non-positive geometry")
        if self.size_bytes % (self.line_bytes * self.assoc):
            raise ConfigurationError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"line*assoc ({self.line_bytes}*{self.assoc})"
            )
        nsets = self.size_bytes // (self.line_bytes * self.assoc)
        if not is_power_of_two(nsets):
            raise ConfigurationError(
                f"{self.name}: set count {nsets} must be a power of two"
            )

    @property
    def nsets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.assoc)

    @property
    def nlines(self) -> int:
        return self.size_bytes // self.line_bytes

    def scaled(self, factor: float) -> "CacheConfig":
        """Geometry scaled by ``factor`` (keeps line size and assoc).

        Used by experiment presets to shrink machines so DRAM-resident
        working sets stay simulation-friendly; documented in DESIGN.md.
        """
        lines = max(int(self.nlines * factor), self.assoc)
        nsets = 1 << max((lines // self.assoc).bit_length() - 1, 0)
        size = nsets * self.assoc * self.line_bytes
        return CacheConfig(
            self.name,
            size,
            self.line_bytes,
            self.assoc,
            self.policy,
            self.latency_cycles,
            self.bytes_per_cycle,
        )


class Cache:
    """One cache level; see module docstring for design notes."""

    def __init__(self, config: CacheConfig,
                 policy: Optional[ReplacementPolicy] = None,
                 backend: Optional[str] = None) -> None:
        self.config = config
        self.stats = CacheStats()
        self._set_mask = config.nsets - 1
        self._assoc = config.assoc
        self._resident = 0
        if backend is None:
            backend = (
                "dict" if policy is None and config.policy == "lru"
                else "ways"
            )
        if backend not in ("dict", "ways", "array"):
            raise ConfigurationError(
                f"{config.name}: unknown cache backend {backend!r}; "
                "choose from ['dict', 'ways', 'array']"
            )
        self._backend = backend
        self._fast = backend == "dict"
        if backend == "dict":
            if policy is not None or config.policy != "lru":
                raise ConfigurationError(
                    f"{config.name}: the dict backend supports only LRU"
                )
            # per-set dict: line -> dirty flag; iteration order is recency
            # (first inserted == least recent after move-to-end updates).
            self._sets = [dict() for _ in range(config.nsets)]
        elif backend == "ways":
            self._policy = policy or make_policy(config.policy)
            self._lines = [[None] * self._assoc for _ in range(config.nsets)]
            self._dirty = [[False] * self._assoc for _ in range(config.nsets)]
            self._pstate = [self._policy.new_state(self._assoc)
                            for _ in range(config.nsets)]
        else:
            self._policy = policy or make_policy(config.policy)
            self._init_array_state()

    def _init_array_state(self) -> None:
        """Numpy-backed tag/dirty/policy state (the ``array`` backend).

        Per-set policy metadata is flattened into array rows:

        * LRU/FIFO — a monotone global tick stamped into
          ``_stamp[set, way]`` on recency updates; the victim is the
          valid way with the smallest stamp, which matches the
          recency-list order of the ``ways`` backend exactly.
        * tree-PLRU — the assoc-1 tree bits as a row of ``_plru``.
        * random — no per-set state; victims come from the shared
          policy instance's deterministic xorshift stream.
        """
        nsets, assoc = self.config.nsets, self._assoc
        kind = self._policy.name
        if kind == "plru" and assoc & (assoc - 1):
            raise ConfigurationError(
                "tree-PLRU requires power-of-two associativity"
            )
        self._akind = kind
        self._tags = np.full((nsets, assoc), -1, dtype=np.int64)
        self._adirty = np.zeros((nsets, assoc), dtype=bool)
        if kind in ("lru", "fifo"):
            self._stamp = np.zeros((nsets, assoc), dtype=np.int64)
            self._tick = 0
        elif kind == "plru":
            self._plru = np.zeros((nsets, max(assoc - 1, 1)), dtype=np.uint8)
        elif kind != "random":
            raise ConfigurationError(
                f"array backend does not support policy {kind!r}"
            )

    # ------------------------------------------------------------------
    # shared state-transition accounting
    #
    # The two representations only *locate and move* lines; every
    # statistic is recorded by exactly one of the helpers below, so the
    # fast and generic paths cannot drift apart in their accounting
    # (the historical duplication hazard).
    # ------------------------------------------------------------------
    def _record_lookup(self, hit: bool) -> bool:
        if hit:
            self.stats.hits += 1
        else:
            self.stats.misses += 1
        return hit

    def _record_eviction(
        self, evicted: Optional[Tuple[int, bool]]
    ) -> Optional[Tuple[int, bool]]:
        if evicted is not None:
            self.stats.evictions += 1
            if evicted[1]:
                self.stats.dirty_evictions += 1
        return evicted

    def _record_invalidation(self, dirty: Optional[bool]) -> Optional[bool]:
        if dirty is not None:
            self.stats.invalidations += 1
        return dirty

    # ------------------------------------------------------------------
    # core operations
    # ------------------------------------------------------------------
    def lookup_update(self, line: int, mark_dirty: bool = False) -> bool:
        """Demand access: on hit, refresh recency (and dirty); no fill."""
        if self._fast:
            s = self._sets[line & self._set_mask]
            hit = line in s
            if hit:
                s[line] = s.pop(line) or mark_dirty
        elif self._backend == "ways":
            hit = self._generic_lookup(line, mark_dirty)
        else:
            hit = self._array_lookup(line, mark_dirty)
        return self._record_lookup(hit)

    def _generic_lookup(self, line: int, mark_dirty: bool) -> bool:
        set_idx = line & self._set_mask
        lines = self._lines[set_idx]
        for way in range(self._assoc):
            if lines[way] == line:
                self._policy.on_hit(self._pstate[set_idx], way)
                if mark_dirty:
                    self._dirty[set_idx][way] = True
                return True
        return False

    def fill(self, line: int, dirty: bool = False) -> Optional[Tuple[int, bool]]:
        """Insert ``line``; returns ``(evicted_line, was_dirty)`` or None.

        Filling a line already present refreshes it (dirty flags OR).
        """
        self.stats.fills += 1
        if self._fast:
            s = self._sets[line & self._set_mask]
            if line in s:
                s[line] = s.pop(line) or dirty
                evicted = None
            else:
                if len(s) >= self._assoc:
                    victim = next(iter(s))
                    evicted = (victim, s.pop(victim))
                else:
                    evicted = None
                    self._resident += 1
                s[line] = dirty
        elif self._backend == "ways":
            evicted = self._generic_fill(line, dirty)
        else:
            evicted = self._array_fill(line, dirty)
        return self._record_eviction(evicted)

    def _generic_fill(self, line: int, dirty: bool) -> Optional[Tuple[int, bool]]:
        set_idx = line & self._set_mask
        lines = self._lines[set_idx]
        state = self._pstate[set_idx]
        for way in range(self._assoc):
            if lines[way] == line:
                self._policy.on_fill(state, way)
                self._dirty[set_idx][way] = self._dirty[set_idx][way] or dirty
                return None
        for way in range(self._assoc):
            if lines[way] is None:
                lines[way] = line
                self._dirty[set_idx][way] = dirty
                self._policy.on_fill(state, way)
                self._resident += 1
                return None
        way = self._policy.victim(state, self._assoc)
        evicted = (lines[way], self._dirty[set_idx][way])
        lines[way] = line
        self._dirty[set_idx][way] = dirty
        self._policy.on_fill(state, way)
        return evicted

    def mark_dirty(self, line: int) -> bool:
        """Set the dirty bit of a resident line without touching recency
        or hit/miss statistics (writeback absorption from an upper level).
        Returns False when the line is not resident."""
        if self._fast:
            s = self._sets[line & self._set_mask]
            if line in s:
                s[line] = True
                return True
            return False
        set_idx = line & self._set_mask
        if self._backend == "array":
            ways = np.nonzero(self._tags[set_idx] == line)[0]
            if ways.size:
                self._adirty[set_idx, ways[0]] = True
                return True
            return False
        lines = self._lines[set_idx]
        for way in range(self._assoc):
            if lines[way] == line:
                self._dirty[set_idx][way] = True
                return True
        return False

    def invalidate(self, line: int) -> Optional[bool]:
        """Drop ``line`` if present; returns its dirty flag, else None."""
        if self._fast:
            s = self._sets[line & self._set_mask]
            dirty = s.pop(line) if line in s else None
        elif self._backend == "ways":
            dirty = self._generic_invalidate(line)
        else:
            dirty = self._array_invalidate(line)
        if dirty is not None:
            self._resident -= 1
        return self._record_invalidation(dirty)

    def _generic_invalidate(self, line: int) -> Optional[bool]:
        set_idx = line & self._set_mask
        lines = self._lines[set_idx]
        for way in range(self._assoc):
            if lines[way] == line:
                lines[way] = None
                dirty = self._dirty[set_idx][way]
                self._dirty[set_idx][way] = False
                return dirty
        return None

    # ------------------------------------------------------------------
    # array backend: same transitions as the ``ways`` backend, with the
    # policy state flattened into numpy rows (see _init_array_state)
    # ------------------------------------------------------------------
    def _array_touch(self, set_idx: int, way: int, fill: bool) -> None:
        kind = self._akind
        if kind == "lru" or (kind == "fifo" and fill):
            self._tick += 1
            self._stamp[set_idx, way] = self._tick
        elif kind == "plru":
            # identical walk to TreePlruPolicy._touch, on the bit row
            bits = self._plru[set_idx]
            node = 0
            span = self._assoc
            offset = 0
            while span > 1:
                half = span // 2
                go_right = way >= offset + half
                bits[node] = 0 if go_right else 1
                node = 2 * node + (2 if go_right else 1)
                if go_right:
                    offset += half
                span = half

    def _array_victim(self, set_idx: int) -> int:
        kind = self._akind
        if kind in ("lru", "fifo"):
            # victim() is only reached with every way valid, so the
            # smallest stamp is exactly the ways-backend recency tail
            return int(np.argmin(self._stamp[set_idx]))
        if kind == "plru":
            bits = self._plru[set_idx]
            node = 0
            span = self._assoc
            offset = 0
            while span > 1:
                half = span // 2
                go_right = bits[node] == 1
                node = 2 * node + (2 if go_right else 1)
                if go_right:
                    offset += half
                span = half
            return offset
        return self._policy.victim(None, self._assoc)

    def _array_lookup(self, line: int, mark_dirty: bool) -> bool:
        set_idx = line & self._set_mask
        ways = np.nonzero(self._tags[set_idx] == line)[0]
        if not ways.size:
            return False
        way = int(ways[0])
        self._array_touch(set_idx, way, fill=False)
        if mark_dirty:
            self._adirty[set_idx, way] = True
        return True

    def _array_fill(self, line: int, dirty: bool) -> Optional[Tuple[int, bool]]:
        set_idx = line & self._set_mask
        tags = self._tags[set_idx]
        ways = np.nonzero(tags == line)[0]
        if ways.size:
            way = int(ways[0])
            self._array_touch(set_idx, way, fill=True)
            if dirty:
                self._adirty[set_idx, way] = True
            return None
        empty = np.nonzero(tags == -1)[0]
        if empty.size:
            way = int(empty[0])
            evicted = None
            self._resident += 1
        else:
            way = self._array_victim(set_idx)
            evicted = (int(tags[way]), bool(self._adirty[set_idx, way]))
        tags[way] = line
        self._adirty[set_idx, way] = dirty
        self._array_touch(set_idx, way, fill=True)
        return evicted

    def _array_invalidate(self, line: int) -> Optional[bool]:
        set_idx = line & self._set_mask
        ways = np.nonzero(self._tags[set_idx] == line)[0]
        if not ways.size:
            return None
        way = int(ways[0])
        self._tags[set_idx, way] = -1
        dirty = bool(self._adirty[set_idx, way])
        self._adirty[set_idx, way] = False
        return dirty

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def contains(self, line: int) -> bool:
        """Non-mutating residency test (no recency update)."""
        if self._fast:
            return line in self._sets[line & self._set_mask]
        if self._backend == "array":
            return bool((self._tags[line & self._set_mask] == line).any())
        return line in self._lines[line & self._set_mask]

    def resident_lines(self) -> Iterator[int]:
        """All currently resident lines (test/diagnostic use)."""
        if self._fast:
            for s in self._sets:
                yield from s
        elif self._backend == "array":
            for tag in self._tags.ravel():
                if tag != -1:
                    yield int(tag)
        else:
            for lines in self._lines:
                for line in lines:
                    if line is not None:
                        yield line

    def dirty_lines(self) -> Iterator[int]:
        """All resident dirty lines."""
        if self._fast:
            for s in self._sets:
                for line, dirty in s.items():
                    if dirty:
                        yield line
        elif self._backend == "array":
            flat_tags = self._tags.ravel()
            flat_dirty = self._adirty.ravel()
            for idx in np.nonzero(flat_dirty)[0]:
                if flat_tags[idx] != -1:
                    yield int(flat_tags[idx])
        else:
            for set_idx, lines in enumerate(self._lines):
                for way, line in enumerate(lines):
                    if line is not None and self._dirty[set_idx][way]:
                        yield line

    def occupancy(self) -> int:
        """Number of resident lines (O(1): maintained as a counter)."""
        return self._resident

    def clear(self) -> None:
        """Drop all contents (dirty data is discarded, not written back)."""
        with SPANS("cache.clear", level=self.config.name):
            self._resident = 0
            if self._fast:
                for s in self._sets:
                    s.clear()
            elif self._backend == "array":
                # In place: external views of these arrays (the C datapath
                # kernel caches raw pointers) must stay valid across clears.
                self._tags.fill(-1)
                self._adirty.fill(False)
                if self._akind in ("lru", "fifo"):
                    self._stamp.fill(0)
                    self._tick = 0
                elif self._akind == "plru":
                    self._plru.fill(0)
            else:
                for set_idx in range(self.config.nsets):
                    self._lines[set_idx] = [None] * self._assoc
                    self._dirty[set_idx] = [False] * self._assoc
                    self._pstate[set_idx] = self._policy.new_state(self._assoc)

    def __repr__(self) -> str:
        c = self.config
        return (
            f"Cache({c.name}: {c.size_bytes} B, {c.assoc}-way, "
            f"{c.nsets} sets, {c.policy})"
        )
