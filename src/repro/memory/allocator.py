"""Simulated address-space allocator with NUMA placement.

Programs declare named buffers; before execution the machine maps each
buffer to a region of the simulated physical address space.  The
allocator is a simple bump allocator with alignment, mirroring the
``numactl``-bound allocations the paper controls explicitly: each region
carries the NUMA node its pages live on, and the hierarchy routes its
traffic to that node's memory controller.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import AllocationError
from ..units import CACHE_LINE_BYTES, PAGE_BYTES, round_up


@dataclass(frozen=True)
class Allocation:
    """A mapped buffer: ``[base, base + size)`` on ``node``."""

    name: str
    base: int
    size: int
    node: int

    @property
    def end(self) -> int:
        return self.base + self.size

    def line_range(self, line_bytes: int = CACHE_LINE_BYTES):
        """(first_line, last_line_exclusive) covering the region."""
        first = self.base // line_bytes
        last = (self.base + self.size + line_bytes - 1) // line_bytes
        return first, last

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end


class BumpAllocator:
    """Page-aligned bump allocation over a flat simulated address space."""

    def __init__(self, base: int = PAGE_BYTES,
                 capacity: int = 1 << 40,
                 default_align: int = CACHE_LINE_BYTES,
                 stagger: bool = True) -> None:
        """``stagger`` offsets successive allocations by one cache line
        each (modulo 16), the discipline STREAM-style benchmarks use so
        that equal-sized arrays do not collide in the same cache sets.
        Explicit ``align`` requests above one line suppress it."""
        if base < 0 or capacity <= 0:
            raise AllocationError("allocator needs non-negative base, positive capacity")
        self._start = base
        self._next = base
        self._capacity = capacity
        self._default_align = default_align
        self._stagger = stagger
        self._regions: List[Allocation] = []
        self._bases: List[int] = []
        self._by_name: Dict[str, Allocation] = {}

    def allocate(self, name: str, size: int, node: int = 0,
                 align: Optional[int] = None) -> Allocation:
        """Map ``size`` bytes for buffer ``name`` on NUMA ``node``.

        Each allocation starts on a fresh page so two buffers never share
        a cache line or a page (which would confuse traffic attribution).
        """
        if size <= 0:
            raise AllocationError(f"buffer {name!r} needs positive size")
        if name in self._by_name:
            raise AllocationError(f"buffer {name!r} already allocated")
        requested_align = align
        align = align or self._default_align
        if align <= 0 or align & (align - 1):
            raise AllocationError(f"alignment {align} must be a power of two")
        base = round_up(round_up(self._next, PAGE_BYTES), align)
        if self._stagger and (requested_align is None
                              or requested_align <= CACHE_LINE_BYTES):
            base += (len(self._regions) % 16) * CACHE_LINE_BYTES
        end = base + round_up(size, PAGE_BYTES)
        if end - self._start > self._capacity:
            raise AllocationError(
                f"address space exhausted allocating {size} bytes for {name!r}"
            )
        allocation = Allocation(name, base, size, node)
        self._regions.append(allocation)
        self._bases.append(base)
        self._by_name[name] = allocation
        self._next = end
        return allocation

    def get(self, name: str) -> Allocation:
        """Look up an allocation by buffer name."""
        try:
            return self._by_name[name]
        except KeyError as exc:
            raise AllocationError(f"no allocation named {name!r}") from exc

    def region_of(self, addr: int) -> Allocation:
        """The allocation containing simulated address ``addr``."""
        idx = bisect.bisect_right(self._bases, addr) - 1
        if idx >= 0:
            region = self._regions[idx]
            if region.contains(addr):
                return region
        raise AllocationError(f"address {addr:#x} is not mapped")

    def node_of(self, addr: int) -> int:
        """NUMA node owning ``addr``."""
        return self.region_of(addr).node

    @property
    def allocations(self) -> List[Allocation]:
        return list(self._regions)

    @property
    def bytes_allocated(self) -> int:
        return self._next - self._start

    def reset(self) -> None:
        """Drop all mappings (new program load)."""
        self._next = self._start
        self._regions.clear()
        self._bases.clear()
        self._by_name.clear()
