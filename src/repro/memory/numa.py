"""NUMA topology: sockets, cores, and remote-access characteristics.

The paper's two-socket experiments require binding threads and memory to
nodes (``numactl`` in the original).  :class:`Topology` models the
socket/core layout; :class:`NumaConfig` carries the cost of crossing the
interconnect, which the core's timing model applies to remote lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import ConfigurationError


@dataclass(frozen=True)
class NumaConfig:
    """Remote-access penalties across the socket interconnect."""

    remote_latency_extra_cycles: int = 120
    remote_bandwidth_factor: float = 0.6

    def __post_init__(self) -> None:
        if not 0 < self.remote_bandwidth_factor <= 1.0:
            raise ConfigurationError("remote bandwidth factor must be in (0, 1]")
        if self.remote_latency_extra_cycles < 0:
            raise ConfigurationError("remote latency penalty must be >= 0")


@dataclass(frozen=True)
class Topology:
    """Socket/core layout; cores are numbered socket-major."""

    sockets: int = 1
    cores_per_socket: int = 4

    def __post_init__(self) -> None:
        if self.sockets <= 0 or self.cores_per_socket <= 0:
            raise ConfigurationError("topology needs positive socket/core counts")

    @property
    def total_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    def node_of_core(self, core_id: int) -> int:
        """NUMA node (socket) a core belongs to."""
        if not 0 <= core_id < self.total_cores:
            raise ConfigurationError(
                f"core {core_id} out of range [0, {self.total_cores})"
            )
        return core_id // self.cores_per_socket

    def cores_of_node(self, node: int) -> List[int]:
        """Core ids on one socket."""
        if not 0 <= node < self.sockets:
            raise ConfigurationError(f"node {node} out of range [0, {self.sockets})")
        start = node * self.cores_per_socket
        return list(range(start, start + self.cores_per_socket))

    def first_cores(self, count: int) -> List[int]:
        """The first ``count`` cores, filling socket 0 before socket 1 —
        the binding the paper uses for single-socket experiments."""
        if not 0 < count <= self.total_cores:
            raise ConfigurationError(
                f"cannot select {count} cores from {self.total_cores}"
            )
        return list(range(count))

    def interleaved_cores(self, count: int) -> List[int]:
        """``count`` cores spread round-robin across sockets (the layout
        that *violates* socket binding; used to demonstrate why the paper
        pins threads)."""
        if not 0 < count <= self.total_cores:
            raise ConfigurationError(
                f"cannot select {count} cores from {self.total_cores}"
            )
        order = []
        for offset in range(self.cores_per_socket):
            for node in range(self.sockets):
                order.append(node * self.cores_per_socket + offset)
        return order[:count]
