"""TLB model: two-level translation caching with page-walk cost.

Strided kernels (column-major dgemv, large-stride gathers) touch a new
4 KiB page on nearly every access; once the working set's *page count*
exceeds the STLB, every access also pays a page walk.  That cost is
invisible to cache-only models but bends real measured rooflines — so
the substrate models it.

Walks are modelled as latency only (walk entries hit the page-table
caches), so functional memory traffic — and therefore every Q
measurement — is unaffected; only the cycle model sees TLB misses.
Fully-associative LRU arrays, like the hardware's L1 DTLB.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError


@dataclass(frozen=True)
class TlbConfig:
    """Two-level data-TLB geometry (Sandy Bridge-like defaults)."""

    l1_entries: int = 64
    l2_entries: int = 512
    page_bytes: int = 4096
    walk_latency_cycles: int = 30

    def __post_init__(self) -> None:
        if self.l1_entries <= 0 or self.l2_entries <= 0:
            raise ConfigurationError("TLB levels need positive entry counts")
        if self.l2_entries < self.l1_entries:
            raise ConfigurationError("STLB must be at least L1-DTLB sized")
        if self.page_bytes <= 0 or self.page_bytes & (self.page_bytes - 1):
            raise ConfigurationError("page size must be a power of two")
        if self.walk_latency_cycles < 0:
            raise ConfigurationError("walk latency must be non-negative")


@dataclass
class TlbStats:
    """Cumulative translation events."""

    accesses: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    walks: int = 0

    def reset(self) -> None:
        self.accesses = 0
        self.l1_hits = 0
        self.l2_hits = 0
        self.walks = 0

    @property
    def walk_rate(self) -> float:
        return self.walks / self.accesses if self.accesses else 0.0


class Tlb:
    """Per-core two-level TLB (fully associative, LRU via dict order)."""

    def __init__(self, config: TlbConfig) -> None:
        self.config = config
        self.stats = TlbStats()
        self._l1: dict = {}
        self._l2: dict = {}
        self._page_shift = config.page_bytes.bit_length() - 1

    def page_of_line(self, line: int, line_bytes: int = 64) -> int:
        """Page number containing a cache line."""
        return (line * line_bytes) >> self._page_shift

    def translate_page(self, page: int) -> int:
        """Translate one page access; returns walk cycles incurred."""
        self.stats.accesses += 1
        if page in self._l1:
            del self._l1[page]
            self._l1[page] = True
            self.stats.l1_hits += 1
            return 0
        if page in self._l2:
            del self._l2[page]
            self.stats.l2_hits += 1
            self._fill(page)
            return 0
        self.stats.walks += 1
        self._fill(page)
        return self.config.walk_latency_cycles

    def _fill(self, page: int) -> None:
        if len(self._l1) >= self.config.l1_entries:
            victim = next(iter(self._l1))
            del self._l1[victim]
            if len(self._l2) >= self.config.l2_entries:
                del self._l2[next(iter(self._l2))]
            self._l2[victim] = True
        self._l1[page] = True

    def contains(self, page: int) -> bool:
        """Resident in either level (no state change)."""
        return page in self._l1 or page in self._l2

    def flush(self) -> None:
        """Full TLB shootdown (context-switch analogue)."""
        self._l1.clear()
        self._l2.clear()

    def reset(self) -> None:
        self.flush()
        self.stats.reset()

    @property
    def resident_pages(self) -> int:
        return len(self._l1) + len(self._l2)

    def page_sets(self):
        """(L1 pages, L2 pages) as frozensets (conformance/diagnostics)."""
        return frozenset(self._l1), frozenset(self._l2)


class ArrayTlb:
    """Numpy-backed TLB, state shareable with the C datapath kernel.

    Behaviourally identical to :class:`Tlb`: the dict backend's
    insertion-order recency is replicated with monotone stamps — the L1
    victim is the valid entry with the smallest stamp (stamps refresh on
    hit and on fill), and the L2 victim is the oldest *insertion* (L2
    entries are never re-stamped after insert, matching the dict's
    insert-only ordering).  All mutable state lives in int64 arrays so
    the compiled kernel can operate on the same storage the Python
    fallback paths use.

    Array layout (shared with ``engine/_ckernel.c``):

    * ``l1_pages`` / ``l1_stamp`` — fully-associative L1 entries
      (page number, recency stamp); -1 marks an empty slot.
    * ``l2_pages`` / ``l2_stamp`` — same for the STLB.
    * ``regs`` — ``[tick, l1_count, l2_count]``.
    """

    EMPTY = -1

    def __init__(self, config: TlbConfig) -> None:
        self.config = config
        self.stats = TlbStats()
        self._page_shift = config.page_bytes.bit_length() - 1
        self.l1_pages = np.full(config.l1_entries, self.EMPTY, dtype=np.int64)
        self.l1_stamp = np.zeros(config.l1_entries, dtype=np.int64)
        self.l2_pages = np.full(config.l2_entries, self.EMPTY, dtype=np.int64)
        self.l2_stamp = np.zeros(config.l2_entries, dtype=np.int64)
        self.regs = np.zeros(3, dtype=np.int64)  # [tick, l1_count, l2_count]

    def page_of_line(self, line: int, line_bytes: int = 64) -> int:
        return (line * line_bytes) >> self._page_shift

    def translate_page(self, page: int) -> int:
        self.stats.accesses += 1
        idx = np.nonzero(self.l1_pages == page)[0]
        if idx.size:
            self.regs[0] += 1
            self.l1_stamp[idx[0]] = self.regs[0]
            self.stats.l1_hits += 1
            return 0
        idx = np.nonzero(self.l2_pages == page)[0]
        if idx.size:
            self.l2_pages[idx[0]] = self.EMPTY
            self.regs[2] -= 1
            self.stats.l2_hits += 1
            self._fill(page)
            return 0
        self.stats.walks += 1
        self._fill(page)
        return self.config.walk_latency_cycles

    def _fill(self, page: int) -> None:
        l1p, l2p = self.l1_pages, self.l2_pages
        if self.regs[1] >= self.config.l1_entries:
            # all L1 slots valid -> smallest stamp is the dict-order head
            vidx = int(np.argmin(self.l1_stamp))
            victim = int(l1p[vidx])
            l1p[vidx] = self.EMPTY
            self.regs[1] -= 1
            if self.regs[2] >= self.config.l2_entries:
                widx = int(np.argmin(self.l2_stamp))
                l2p[widx] = self.EMPTY
                self.regs[2] -= 1
            free2 = int(np.nonzero(l2p == self.EMPTY)[0][0])
            self.regs[0] += 1
            l2p[free2] = victim
            self.l2_stamp[free2] = self.regs[0]
            self.regs[2] += 1
        free1 = int(np.nonzero(l1p == self.EMPTY)[0][0])
        self.regs[0] += 1
        l1p[free1] = page
        self.l1_stamp[free1] = self.regs[0]
        self.regs[1] += 1

    def contains(self, page: int) -> bool:
        return bool((self.l1_pages == page).any()
                    or (self.l2_pages == page).any())

    def flush(self) -> None:
        # In place: the C kernel holds raw pointers to these arrays.
        self.l1_pages.fill(self.EMPTY)
        self.l2_pages.fill(self.EMPTY)
        self.l1_stamp.fill(0)
        self.l2_stamp.fill(0)
        self.regs.fill(0)

    def reset(self) -> None:
        self.flush()
        self.stats.reset()

    @property
    def resident_pages(self) -> int:
        return int(self.regs[1] + self.regs[2])

    def page_sets(self):
        l1 = frozenset(int(p) for p in self.l1_pages if p != self.EMPTY)
        l2 = frozenset(int(p) for p in self.l2_pages if p != self.EMPTY)
        return l1, l2
