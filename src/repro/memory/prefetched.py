"""Open-addressing int64 hash set for prefetched-line tracking.

``CorePort`` tracks the set of lines brought in by hardware/software
prefetch that have not yet been touched by demand.  On array-backend
machines the compiled datapath kernel needs to probe and mutate this
set millions of times per batch, so the storage is a flat numpy slot
array shared with C rather than a Python ``set``.

Layout (shared with ``engine/_ckernel.c``):

* ``slots`` — power-of-two table; ``-1`` = empty, ``-2`` = tombstone,
  anything else is a resident line number (always >= 0).
* ``regs`` — ``[size, tombstones]``.

The probe sequence is linear with a Fibonacci multiplicative hash; the
C side implements the identical function, so both can interleave
freely on the same table.  Growth happens only on the Python side
(``ensure_room`` before each kernel call), so C never rehashes.
"""

from __future__ import annotations

import numpy as np

EMPTY = -1
TOMB = -2
_MULT = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


def _slot_of(line: int, mask: int) -> int:
    return (((line * _MULT) & _MASK64) >> 32) & mask


class PrefetchedSet:
    """Set of line numbers with storage shareable with the C kernel."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity & (capacity - 1):
            raise ValueError("capacity must be a power of two")
        self.slots = np.full(capacity, EMPTY, dtype=np.int64)
        self.regs = np.zeros(2, dtype=np.int64)  # [size, tombstones]
        self._mask = capacity - 1

    def __len__(self) -> int:
        return int(self.regs[0])

    def __contains__(self, line: int) -> bool:
        slots, mask = self.slots, self._mask
        i = _slot_of(line, mask)
        while True:
            v = slots[i]
            if v == line:
                return True
            if v == EMPTY:
                return False
            i = (i + 1) & mask

    def add(self, line: int) -> None:
        slots, mask = self.slots, self._mask
        i = _slot_of(line, mask)
        first_tomb = -1
        while True:
            v = slots[i]
            if v == line:
                return
            if v == EMPTY:
                break
            if v == TOMB and first_tomb < 0:
                first_tomb = i
            i = (i + 1) & mask
        if first_tomb >= 0:
            slots[first_tomb] = line
            self.regs[1] -= 1
        else:
            slots[i] = line
        self.regs[0] += 1
        if (self.regs[0] + self.regs[1]) * 2 > len(slots):
            self._grow()

    def discard(self, line: int) -> None:
        slots, mask = self.slots, self._mask
        i = _slot_of(line, mask)
        while True:
            v = slots[i]
            if v == line:
                slots[i] = TOMB
                self.regs[0] -= 1
                self.regs[1] += 1
                return
            if v == EMPTY:
                return
            i = (i + 1) & mask

    def clear(self) -> None:
        # In place: the C kernel holds a pointer refreshed per call, but
        # clear between calls must not invalidate an already-built view.
        self.slots.fill(EMPTY)
        self.regs.fill(0)

    def __iter__(self):
        for v in self.slots:
            if v >= 0:
                yield int(v)

    def ensure_room(self, extra: int) -> bool:
        """Grow so that ``extra`` more inserts keep load factor <= 1/2.

        Returns True when the slot array was reallocated (callers caching
        the raw pointer must refresh it).
        """
        need = int(self.regs[0] + self.regs[1]) + extra
        if need * 2 <= len(self.slots):
            return False
        self._grow(minimum=need * 2)
        return True

    def _grow(self, minimum: int = 0) -> None:
        target = max(len(self.slots) * 2, 1024)
        while target < minimum:
            target *= 2
        live = self.slots[self.slots >= 0]
        fresh = np.full(target, EMPTY, dtype=np.int64)
        mask = target - 1
        for line in live.tolist():
            i = _slot_of(line, mask)
            while fresh[i] != EMPTY:
                i = (i + 1) & mask
            fresh[i] = line
        self.slots = fresh
        self._mask = mask
        self.regs[1] = 0
