"""DRAM node model and its IMC (integrated memory controller) counters.

The paper obtains memory traffic ``Q`` from uncore IMC events that count
64-byte CAS transfers.  :class:`DramNode` is the simulated source of
those events: every line that crosses the controller — demand fill,
writeback, prefetch, or non-temporal store — bumps the read/write
counters, exactly like the hardware events the methodology reads.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class DramConfig:
    """Bandwidth/latency parameters of one memory node.

    ``bytes_per_cycle_total`` is the node's peak at the core clock;
    ``per_core_bytes_per_cycle`` is the single-core ceiling (limited by
    outstanding-miss parallelism, the reason one core cannot saturate a
    socket's channels — a phenomenon the paper's bandwidth table shows).
    """

    channels: int = 4
    bytes_per_cycle_total: float = 16.0
    per_core_bytes_per_cycle: float = 6.0
    latency_cycles: int = 220
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.channels <= 0 or self.line_bytes <= 0:
            raise ConfigurationError("DRAM needs positive channels/line size")
        if self.bytes_per_cycle_total <= 0 or self.per_core_bytes_per_cycle <= 0:
            raise ConfigurationError("DRAM bandwidth must be positive")
        if self.per_core_bytes_per_cycle > self.bytes_per_cycle_total:
            raise ConfigurationError(
                "per-core DRAM bandwidth cannot exceed node total"
            )

    def peak_bandwidth(self, frequency_hz: float) -> float:
        """Theoretical node bandwidth in bytes/s at a given core clock."""
        return self.bytes_per_cycle_total * frequency_hz

    def scaled(self, factor: float) -> "DramConfig":
        """Bandwidth scaled by ``factor`` (for shrunken experiment machines)."""
        return DramConfig(
            self.channels,
            self.bytes_per_cycle_total * factor,
            self.per_core_bytes_per_cycle * factor,
            self.latency_cycles,
            self.line_bytes,
        )


@dataclass
class ImcCounters:
    """Uncore CAS counters of one node (monotonic, line granular)."""

    cas_reads: int = 0
    cas_writes: int = 0

    def copy(self) -> "ImcCounters":
        return ImcCounters(self.cas_reads, self.cas_writes)

    def delta(self, earlier: "ImcCounters") -> "ImcCounters":
        return ImcCounters(
            self.cas_reads - earlier.cas_reads,
            self.cas_writes - earlier.cas_writes,
        )

    @property
    def total_lines(self) -> int:
        return self.cas_reads + self.cas_writes

    def as_dict(self) -> dict:
        """Flat counter dict (trace events, JSON reports)."""
        return {"cas_reads": self.cas_reads, "cas_writes": self.cas_writes}


class DramNode:
    """One NUMA node's memory: counts every line crossing its controller."""

    def __init__(self, node_id: int, config: DramConfig) -> None:
        self.node_id = node_id
        self.config = config
        self.counters = ImcCounters()

    def read_line(self) -> None:
        """A 64-byte read CAS (demand miss, RFO, or prefetch fill)."""
        self.counters.cas_reads += 1

    def write_line(self) -> None:
        """A 64-byte write CAS (dirty writeback or non-temporal store)."""
        self.counters.cas_writes += 1

    def read_lines(self, count: int) -> None:
        self.counters.cas_reads += count

    def write_lines(self, count: int) -> None:
        self.counters.cas_writes += count

    @property
    def bytes_transferred(self) -> int:
        return self.counters.total_lines * self.config.line_bytes

    def __repr__(self) -> str:
        return (
            f"DramNode({self.node_id}: reads={self.counters.cas_reads}, "
            f"writes={self.counters.cas_writes})"
        )
