"""Multi-level memory hierarchy with per-core ports.

Layout mirrors the paper's Xeons: private L1/L2 per core, a shared L3
per socket, and one DRAM node (with IMC counters) per socket.  The L3 is
mostly-inclusive (fills propagate to all levels; evictions are
independent per level), matching modern Intel parts closely enough for
traffic accounting while keeping the simulation fast.

Every core gets a :class:`CorePort`, the object the interpreter drives.
A port resolves demand accesses through its private caches and socket
L3, routes DRAM traffic to the *home node of the data* (set by the NUMA
allocator), triggers hardware prefetchers on L1 misses, and returns
exact per-batch statistics for the cycle model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import ConfigurationError
from ..obs.spans import SPANS
from ..trace.bus import TraceBus
from ..trace.events import CACHE, DRAM, PREFETCH, TraceEvent
from ..prefetch import (
    NextLinePrefetcher,
    PrefetchControl,
    Prefetcher,
    StreamPrefetcher,
    StridePrefetcher,
)
from ..prefetch.arraystate import ArrayStreamPrefetcher, ArrayStridePrefetcher
from .cache import Cache, CacheConfig
from .dram import DramConfig, DramNode
from .numa import NumaConfig, Topology
from .prefetched import PrefetchedSet
from .tlb import ArrayTlb, Tlb, TlbConfig


@dataclass(frozen=True)
class HierarchyConfig:
    """Cache/DRAM geometry for one machine."""

    l1: CacheConfig
    l2: CacheConfig
    l3: CacheConfig
    dram: DramConfig
    numa: NumaConfig = field(default_factory=NumaConfig)
    tlb: TlbConfig = field(default_factory=TlbConfig)

    def __post_init__(self) -> None:
        line = self.l1.line_bytes
        if self.l2.line_bytes != line or self.l3.line_bytes != line:
            raise ConfigurationError("all cache levels must share one line size")
        if self.dram.line_bytes != line:
            raise ConfigurationError("DRAM line size must match the caches")
        if not self.l1.size_bytes <= self.l2.size_bytes <= self.l3.size_bytes:
            raise ConfigurationError("expected L1 <= L2 <= L3 capacities")

    @property
    def line_bytes(self) -> int:
        return self.l1.line_bytes


@dataclass
class BatchStats:
    """Exact event counts for one batch of demand accesses."""

    accesses: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    l3_hits: int = 0
    dram_reads: int = 0          # demand misses served by DRAM (incl. RFO)
    writebacks: int = 0          # dirty L3 evictions reaching DRAM
    nt_lines: int = 0            # non-temporal store lines
    l1_evictions: int = 0        # lines displaced from L1 (clean or dirty)
    l2_evictions: int = 0
    l3_evictions: int = 0
    sw_prefetches: int = 0
    hw_prefetch_issued: int = 0
    hw_prefetch_dram_reads: int = 0
    prefetch_useful: int = 0     # demand hits on prefetched lines
    remote_dram_lines: int = 0   # DRAM lines homed on a remote node
    flushes: int = 0
    tlb_misses: int = 0          # page walks triggered
    tlb_walk_cycles: int = 0     # latency those walks cost

    def merge(self, other: "BatchStats") -> None:
        self.accesses += other.accesses
        self.l1_hits += other.l1_hits
        self.l2_hits += other.l2_hits
        self.l3_hits += other.l3_hits
        self.dram_reads += other.dram_reads
        self.writebacks += other.writebacks
        self.nt_lines += other.nt_lines
        self.l1_evictions += other.l1_evictions
        self.l2_evictions += other.l2_evictions
        self.l3_evictions += other.l3_evictions
        self.sw_prefetches += other.sw_prefetches
        self.hw_prefetch_issued += other.hw_prefetch_issued
        self.hw_prefetch_dram_reads += other.hw_prefetch_dram_reads
        self.prefetch_useful += other.prefetch_useful
        self.remote_dram_lines += other.remote_dram_lines
        self.flushes += other.flushes
        self.tlb_misses += other.tlb_misses
        self.tlb_walk_cycles += other.tlb_walk_cycles

    def as_dict(self) -> dict:
        """Flat counter dict (trace events, JSON reports)."""
        return {
            "accesses": self.accesses,
            "l1_hits": self.l1_hits,
            "l2_hits": self.l2_hits,
            "l3_hits": self.l3_hits,
            "dram_reads": self.dram_reads,
            "writebacks": self.writebacks,
            "nt_lines": self.nt_lines,
            "l1_evictions": self.l1_evictions,
            "l2_evictions": self.l2_evictions,
            "l3_evictions": self.l3_evictions,
            "sw_prefetches": self.sw_prefetches,
            "hw_prefetch_issued": self.hw_prefetch_issued,
            "hw_prefetch_dram_reads": self.hw_prefetch_dram_reads,
            "prefetch_useful": self.prefetch_useful,
            "remote_dram_lines": self.remote_dram_lines,
            "flushes": self.flushes,
            "tlb_misses": self.tlb_misses,
            "tlb_walk_cycles": self.tlb_walk_cycles,
        }

    @property
    def demand_misses_to_dram(self) -> int:
        return self.dram_reads

    @property
    def dram_lines_total(self) -> int:
        """All DRAM line transfers caused by this batch."""
        return (self.dram_reads + self.writebacks + self.nt_lines
                + self.hw_prefetch_dram_reads)


def default_prefetchers() -> List[Prefetcher]:
    """The engine set present on the simulated Xeons."""
    return [
        NextLinePrefetcher(),
        StreamPrefetcher(),
        StridePrefetcher(),
    ]


class MemoryHierarchy:
    """All caches and DRAM nodes of one machine."""

    def __init__(self, config: HierarchyConfig, topology: Topology,
                 prefetch_factory: Optional[Callable[[], List[Prefetcher]]] = None,
                 prefetch_control: Optional[PrefetchControl] = None) -> None:
        self.config = config
        self.topology = topology
        #: trace event bus shared by every port (and the owning machine);
        #: disabled — hence zero-overhead — until a sink is attached
        self.bus = TraceBus()
        self.prefetch_control = prefetch_control or PrefetchControl()
        factory = prefetch_factory or default_prefetchers
        ncores = topology.total_cores
        self.l1 = [Cache(config.l1) for _ in range(ncores)]
        self.l2 = [Cache(config.l2) for _ in range(ncores)]
        self.l3 = [Cache(config.l3) for _ in range(topology.sockets)]
        self.dram = [DramNode(node, config.dram) for node in range(topology.sockets)]
        self._prefetchers: List[List[Prefetcher]] = [factory() for _ in range(ncores)]
        self._ports: Dict[int, CorePort] = {}
        self._custom_prefetch = prefetch_factory is not None
        #: True once the caches/TLBs/prefetchers were swapped to the
        #: numpy array state the compiled datapath kernel shares
        self.array_mode = False

    def adopt_array_backend(self) -> bool:
        """Swap every cache and prefetcher to numpy array state.

        Called by the machine before the first core is built when the
        fast engine will drive this hierarchy through the compiled C
        datapath.  The array state is behaviourally identical to the
        dict state (hypothesis-verified), and is shared between the C
        kernel and the Python port paths, so rare operations (multi-line
        singles, flushes, conformance introspection) stay exact.

        Only LRU hierarchies with the stock prefetcher set are eligible;
        returns False (leaving the dict state in place) otherwise.
        """
        if self.array_mode:
            return True
        if self._ports:
            return False  # ports already hold references to the dict state
        if self._custom_prefetch:
            return False
        cfg = self.config
        for level in (cfg.l1, cfg.l2, cfg.l3):
            if level.policy != "lru":
                return False
        if any(c.occupancy() for c in self.l1 + self.l2 + self.l3):
            return False
        ncores = self.topology.total_cores
        self.l1 = [Cache(cfg.l1, backend="array") for _ in range(ncores)]
        self.l2 = [Cache(cfg.l2, backend="array") for _ in range(ncores)]
        self.l3 = [Cache(cfg.l3, backend="array")
                   for _ in range(self.topology.sockets)]
        self._prefetchers = [
            [NextLinePrefetcher(), ArrayStreamPrefetcher(),
             ArrayStridePrefetcher()]
            for _ in range(ncores)
        ]
        self.array_mode = True
        return True

    def port(self, core_id: int) -> "CorePort":
        """The (cached) access port of one core."""
        if core_id not in self._ports:
            if not 0 <= core_id < self.topology.total_cores:
                raise ConfigurationError(f"no core {core_id} in topology")
            self._ports[core_id] = CorePort(self, core_id)
        return self._ports[core_id]

    def prefetchers_of(self, core_id: int) -> List[Prefetcher]:
        return self._prefetchers[core_id]

    def bust(self) -> None:
        """Drop every cache and all prefetcher training (cheap cold-state
        reset; the measurement protocols additionally support a genuine
        buffer-sweep bust through the ISA)."""
        with SPANS("cache.bust"):
            for cache in self.l1 + self.l2 + self.l3:
                cache.clear()
            with SPANS("prefetch.reset"):
                for engines in self._prefetchers:
                    for engine in engines:
                        engine.reset()
            for port in self._ports.values():
                port.clear_prefetched()
                port.tlb.reset()
                port._last_page = -1

    def writeback_all(self) -> int:
        """Write every dirty line back to its home DRAM node and clean
        the caches (a wbinvd analogue); returns lines written."""
        with SPANS("cache.writeback"):
            written = 0
            seen = set()
            for cache in self.l1 + self.l2 + self.l3:
                for line in list(cache.dirty_lines()):
                    if line not in seen:
                        seen.add(line)
                        written += 1
                cache.clear()
            if written:
                # home-node attribution is approximated to node 0 for the
                # bulk flush; experiments never measure across this call.
                self.dram[0].write_lines(written)
            return written

    def total_cache_bytes(self) -> int:
        """Aggregate capacity of every cache in the machine."""
        ncores = self.topology.total_cores
        return (ncores * (self.config.l1.size_bytes + self.config.l2.size_bytes)
                + self.topology.sockets * self.config.l3.size_bytes)


class CorePort:
    """One core's view of the hierarchy; drives all demand traffic."""

    def __init__(self, hierarchy: MemoryHierarchy, core_id: int) -> None:
        self.hierarchy = hierarchy
        self.bus = hierarchy.bus
        self.core_id = core_id
        self.node = hierarchy.topology.node_of_core(core_id)
        self.l1 = hierarchy.l1[core_id]
        self.l2 = hierarchy.l2[core_id]
        self.l3 = hierarchy.l3[self.node]
        if hierarchy.array_mode:
            self.tlb = ArrayTlb(hierarchy.config.tlb)
            self._prefetched = PrefetchedSet()
        else:
            self.tlb = Tlb(hierarchy.config.tlb)
            self._prefetched = set()
        self._page_shift = (
            hierarchy.config.tlb.page_bytes.bit_length()
            - hierarchy.config.line_bytes.bit_length()
        )
        self._last_page = -1
        self.totals = BatchStats()

    # ------------------------------------------------------------------
    # demand accesses
    # ------------------------------------------------------------------
    def access_lines(self, lines: Sequence[int], is_write: bool,
                     nt: bool = False, node: Optional[int] = None,
                     stream_id: int = 0) -> BatchStats:
        """Resolve a batch of demand line accesses.

        ``node`` is the NUMA home of the data (defaults to the core's own
        node); ``stream_id`` identifies the access site for the stride
        prefetcher.  Returns the batch's exact event counts.
        """
        stats = BatchStats()
        home = self.node if node is None else node
        with SPANS("mem.demand"):
            if nt:
                self._nt_store_lines(lines, home, stats)
            else:
                self._demand_lines(lines, is_write, home, stream_id, stats)
        self.totals.merge(stats)
        if self.bus.enabled:
            self._emit_batch(stats, home)
        return stats

    def _emit_batch(self, stats: BatchStats, home: int) -> None:
        """Publish one batch's counters on the trace bus.

        Emission is batch-granular (one event per port call, not per
        line) so that tracing a run costs a constant factor, and events
        are stamped at the *phase* cursor the interpreter maintains.
        """
        bus = self.bus
        ts = bus.cursor
        core = self.core_id
        bus.emit(TraceEvent(CACHE, f"core{core}", ts, core=core, args={
            "accesses": stats.accesses,
            "l1_hits": stats.l1_hits,
            "l2_hits": stats.l2_hits,
            "l3_hits": stats.l3_hits,
            "l1_evictions": stats.l1_evictions,
            "l2_evictions": stats.l2_evictions,
            "l3_evictions": stats.l3_evictions,
            "tlb_misses": stats.tlb_misses,
            "flushes": stats.flushes,
        }))
        reads = stats.dram_reads + stats.hw_prefetch_dram_reads
        writes = stats.writebacks + stats.nt_lines
        if reads or writes:
            bus.emit(TraceEvent(DRAM, f"node{home}", ts, core=core, args={
                "reads": reads,
                "writes": writes,
                "demand_reads": stats.dram_reads,
                "prefetch_reads": stats.hw_prefetch_dram_reads,
                "remote_lines": stats.remote_dram_lines,
            }))
        if stats.hw_prefetch_issued or stats.sw_prefetches or stats.prefetch_useful:
            engines = {
                engine.kind: engine.stats.as_dict()
                for engine in self.hierarchy.prefetchers_of(core)
            }
            bus.emit(TraceEvent(PREFETCH, f"core{core}", ts, core=core, args={
                "hw_issued": stats.hw_prefetch_issued,
                "hw_dram_reads": stats.hw_prefetch_dram_reads,
                "sw_prefetches": stats.sw_prefetches,
                "useful": stats.prefetch_useful,
                "engines": engines,
            }))

    def emit_plan_batch(self, stats: BatchStats,
                        homes: Dict[int, List[int]]) -> None:
        """Publish one executed plan's counters on the trace bus.

        The fast engine's analogue of :meth:`_emit_batch`: one CACHE
        event for the whole plan, one DRAM event per home node touched
        (``homes`` maps node -> [demand_reads, prefetch_reads, writes,
        remote_lines]), and one PREFETCH snapshot.  Coarser granularity
        than the reference engine's per-port-call events, but identical
        aggregate args — consumers (TraceCollector, timeline windows)
        only sum batch-event args and read the last PREFETCH snapshot.
        """
        bus = self.bus
        ts = bus.cursor
        core = self.core_id
        bus.emit(TraceEvent(CACHE, f"core{core}", ts, core=core, args={
            "accesses": stats.accesses,
            "l1_hits": stats.l1_hits,
            "l2_hits": stats.l2_hits,
            "l3_hits": stats.l3_hits,
            "l1_evictions": stats.l1_evictions,
            "l2_evictions": stats.l2_evictions,
            "l3_evictions": stats.l3_evictions,
            "tlb_misses": stats.tlb_misses,
            "flushes": stats.flushes,
        }))
        for home, rec in homes.items():
            demand_reads, prefetch_reads, writes, remote = rec
            reads = demand_reads + prefetch_reads
            if reads or writes:
                bus.emit(TraceEvent(DRAM, f"node{home}", ts, core=core, args={
                    "reads": reads,
                    "writes": writes,
                    "demand_reads": demand_reads,
                    "prefetch_reads": prefetch_reads,
                    "remote_lines": remote,
                }))
        if stats.hw_prefetch_issued or stats.sw_prefetches or stats.prefetch_useful:
            engines = {
                engine.kind: engine.stats.as_dict()
                for engine in self.hierarchy.prefetchers_of(core)
            }
            bus.emit(TraceEvent(PREFETCH, f"core{core}", ts, core=core, args={
                "hw_issued": stats.hw_prefetch_issued,
                "hw_dram_reads": stats.hw_prefetch_dram_reads,
                "sw_prefetches": stats.sw_prefetches,
                "useful": stats.prefetch_useful,
                "engines": engines,
            }))

    def _demand_lines(self, lines, is_write: bool, home: int,
                      stream_id: int, stats: BatchStats) -> None:
        l1 = self.l1
        l2 = self.l2
        l3 = self.l3
        prefetched = self._prefetched
        engines = [
            engine
            for engine in self.hierarchy.prefetchers_of(self.core_id)
            if self.hierarchy.prefetch_control.is_enabled(engine.kind)
        ]
        hit_engines = [engine for engine in engines if engine.train_on_hits]
        remote = home != self.node
        dram = self.hierarchy.dram[home]
        tlb = self.tlb
        page_shift = self._page_shift
        for line in lines:
            stats.accesses += 1
            page = line >> page_shift
            if page != self._last_page:
                self._last_page = page
                walk = tlb.translate_page(page)
                if walk:
                    stats.tlb_misses += 1
                    stats.tlb_walk_cycles += walk
            if l1.lookup_update(line, is_write):
                stats.l1_hits += 1
                for engine in hit_engines:
                    candidates = engine.observe(line, False, stream_id)
                    if candidates:
                        self._hw_prefetch(candidates, home, stats)
                continue
            # L1 miss: resolve below, then train the prefetchers
            if l2.lookup_update(line):
                stats.l2_hits += 1
                if line in prefetched:
                    prefetched.discard(line)
                    stats.prefetch_useful += 1
                    for engine in engines:
                        engine.stats.useful += 1
            elif l3.lookup_update(line):
                stats.l3_hits += 1
                if line in prefetched:
                    prefetched.discard(line)
                    stats.prefetch_useful += 1
                self._fill_l2(line, stats, dram)
            else:
                dram.read_line()
                stats.dram_reads += 1
                if remote:
                    stats.remote_dram_lines += 1
                self._fill_l3(line, stats, dram)
                self._fill_l2(line, stats, dram)
            self._fill_l1(line, is_write, stats, dram)
            if engines:
                for engine in engines:
                    candidates = engine.observe(line, True, stream_id)
                    if candidates:
                        self._hw_prefetch(candidates, home, stats)

    def _nt_store_lines(self, lines, home: int, stats: BatchStats) -> None:
        """Streaming stores: bypass the hierarchy, invalidate stale
        copies, and write combined lines straight to DRAM (no RFO)."""
        dram = self.hierarchy.dram[home]
        remote = home != self.node
        page_shift = self._page_shift
        for line in lines:
            stats.accesses += 1
            page = line >> page_shift
            if page != self._last_page:
                self._last_page = page
                walk = self.tlb.translate_page(page)
                if walk:
                    stats.tlb_misses += 1
                    stats.tlb_walk_cycles += walk
            self.l1.invalidate(line)
            self.l2.invalidate(line)
            self.l3.invalidate(line)
            dram.write_line()
            stats.nt_lines += 1
            if remote:
                stats.remote_dram_lines += 1

    # ------------------------------------------------------------------
    # fill / writeback chains
    # ------------------------------------------------------------------
    def _fill_l1(self, line: int, dirty: bool, stats: BatchStats, dram) -> None:
        evicted = self.l1.fill(line, dirty=dirty)
        if evicted is not None:
            stats.l1_evictions += 1
            if evicted[1]:
                self._absorb_dirty(self.l2, evicted[0], stats, dram)

    def _fill_l2(self, line: int, stats: BatchStats, dram) -> None:
        evicted = self.l2.fill(line)
        if evicted is not None:
            stats.l2_evictions += 1
            if evicted[1]:
                self._absorb_dirty(self.l3, evicted[0], stats, dram)

    def _fill_l3(self, line: int, stats: BatchStats, dram) -> None:
        evicted = self.l3.fill(line)
        if evicted is not None:
            stats.l3_evictions += 1
            if evicted[1]:
                dram.write_line()
                stats.writebacks += 1

    def _absorb_dirty(self, lower: Cache, line: int, stats: BatchStats, dram) -> None:
        """Push a dirty eviction into ``lower``; cascade if it evicts."""
        if lower.mark_dirty(line):
            return
        evicted = lower.fill(line, dirty=True)
        if evicted is None:
            return
        if lower is self.l2:
            stats.l2_evictions += 1
            if evicted[1]:
                self._absorb_dirty(self.l3, evicted[0], stats, dram)
        else:
            stats.l3_evictions += 1
            if evicted[1]:
                dram.write_line()
                stats.writebacks += 1

    # ------------------------------------------------------------------
    # prefetch / flush
    # ------------------------------------------------------------------
    def _hw_prefetch(self, lines, home: int, stats: BatchStats) -> None:
        """Bring prefetch candidates into L2+L3 (never L1)."""
        dram = self.hierarchy.dram[home]
        with SPANS("mem.prefetch.hw"):
            self._hw_prefetch_lines(lines, dram, stats)

    def _hw_prefetch_lines(self, lines, dram, stats: BatchStats) -> None:
        for line in lines:
            if self.l2.contains(line) or self.l1.contains(line):
                continue
            stats.hw_prefetch_issued += 1
            if not self.l3.lookup_update(line):
                dram.read_line()
                stats.hw_prefetch_dram_reads += 1
                self._fill_l3(line, stats, dram)
            self._fill_l2(line, stats, dram)
            self._prefetched.add(line)

    def software_prefetch(self, lines, node: Optional[int] = None) -> BatchStats:
        """prefetcht0: bring lines into every level without an access."""
        stats = BatchStats()
        home = self.node if node is None else node
        dram = self.hierarchy.dram[home]
        with SPANS("mem.prefetch.sw"):
            for line in lines:
                stats.sw_prefetches += 1
                if self.l1.contains(line):
                    continue
                if not self.l2.contains(line):
                    if not self.l3.lookup_update(line):
                        dram.read_line()
                        stats.hw_prefetch_dram_reads += 1
                        self._fill_l3(line, stats, dram)
                    self._fill_l2(line, stats, dram)
                self._fill_l1(line, False, stats, dram)
                self._prefetched.add(line)
        self.totals.merge(stats)
        if self.bus.enabled:
            self._emit_batch(stats, home)
        return stats

    def flush_lines(self, lines, node: Optional[int] = None) -> BatchStats:
        """clflush: drop lines everywhere, writing dirty data back."""
        stats = BatchStats()
        home = self.node if node is None else node
        dram = self.hierarchy.dram[home]
        with SPANS("mem.flush"):
            for line in lines:
                stats.flushes += 1
                dirty = False
                for cache in (self.l1, self.l2, self.l3):
                    flag = cache.invalidate(line)
                    dirty = dirty or bool(flag)
                if dirty:
                    dram.write_line()
                    stats.writebacks += 1
        self.totals.merge(stats)
        if self.bus.enabled:
            self._emit_batch(stats, home)
        return stats

    def clear_prefetched(self) -> None:
        self._prefetched.clear()
