"""Memory subsystem: caches, replacement, DRAM/IMC, NUMA, allocator,
and the multi-level hierarchy with per-core access ports."""

from .allocator import Allocation, BumpAllocator
from .cache import Cache, CacheConfig, CacheStats
from .dram import DramConfig, DramNode, ImcCounters
from .hierarchy import (
    BatchStats,
    CorePort,
    HierarchyConfig,
    MemoryHierarchy,
    default_prefetchers,
)
from .numa import NumaConfig, Topology
from .tlb import Tlb, TlbConfig, TlbStats
from .replacement import (
    FifoPolicy,
    LruPolicy,
    RandomPolicy,
    ReplacementPolicy,
    TreePlruPolicy,
    make_policy,
    policy_names,
)

__all__ = [
    "Allocation",
    "BatchStats",
    "BumpAllocator",
    "Cache",
    "CacheConfig",
    "CacheStats",
    "CorePort",
    "DramConfig",
    "DramNode",
    "FifoPolicy",
    "HierarchyConfig",
    "ImcCounters",
    "LruPolicy",
    "MemoryHierarchy",
    "NumaConfig",
    "RandomPolicy",
    "ReplacementPolicy",
    "Tlb",
    "TlbConfig",
    "TlbStats",
    "Topology",
    "TreePlruPolicy",
    "default_prefetchers",
    "make_policy",
    "policy_names",
]
