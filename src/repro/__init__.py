"""repro — reproduction of "Applying the Roofline Model" (ISPASS 2014).

A counter-based roofline measurement methodology implemented end to end
on a simulated x86-like machine: ISA + interpreter, cache hierarchy with
prefetchers, core/uncore PMUs (including the Sandy Bridge FP overcount
artifact), peak microbenchmarks, measurement protocols, kernels, and the
roofline model/plots themselves.

Quickstart::

    import repro

    # discover the machine's per-level bandwidth ceilings with the
    # ERT grid and place dgemm on every band of the hierarchy
    result = repro.analyze("dgemm-tiled", [32, 64, 128], machine="snb")
    print(result.ascii())

Lower-level building blocks::

    from repro import paper_machine
    from repro.roofline import build_roofline
    from repro.measure import measure_kernel
    from repro.kernels import Daxpy

    machine = paper_machine()
    model = build_roofline(machine)
    measurement = measure_kernel(machine, Daxpy(), n=1 << 16)
"""

from .errors import ReproError
from .machine import (
    Machine,
    MachineRef,
    MachineSpec,
    dual_socket_ep,
    haswell_node,
    ivy_bridge_desktop,
    make_machine,
    paper_machine,
    sandy_bridge_ep,
    tiny_test_machine,
)
from .roofline.hierarchical import AnalyzeResult, analyze
from .roofline.ert import discover_ceilings
from .sweep import SweepCache, SweepPlan, SweepPoint, run_plan

__version__ = "1.0.0"

__all__ = [
    "AnalyzeResult",
    "Machine",
    "MachineRef",
    "MachineSpec",
    "ReproError",
    "SweepCache",
    "SweepPlan",
    "SweepPoint",
    "__version__",
    "analyze",
    "discover_ceilings",
    "dual_socket_ep",
    "haswell_node",
    "ivy_bridge_desktop",
    "make_machine",
    "paper_machine",
    "run_plan",
    "sandy_bridge_ep",
    "tiny_test_machine",
]
