#!/usr/bin/env python3
"""Comparing computing platforms with rooflines (a use the paper lists).

Builds measured rooflines for a Sandy Bridge-EP socket (AVX, no FMA)
and a Haswell-class socket (dual FMA), then runs the same two kernels
on both.  The plots show what the spec sheets hide: the FMA machine
doubles the compute roof but moves its ridge point right, so the
memory-bound kernel gains nothing while dgemm nearly doubles.

Writes one SVG per platform into `examples/output/`.

Run:  python examples/compare_platforms.py
"""

import os

from repro import haswell_node, sandy_bridge_ep
from repro.kernels import Daxpy, Dgemm
from repro.measure import measure_kernel
from repro.roofline import KernelPoint, build_roofline, save_svg, svg_plot


def main() -> None:
    out_dir = os.path.join(os.path.dirname(__file__), "output")
    os.makedirs(out_dir, exist_ok=True)

    results = {}
    for factory in (sandy_bridge_ep, haswell_node):
        machine = factory(scale=0.125)
        model = build_roofline(machine, cores=(0,))
        print(model)
        points = []
        l3 = machine.spec.hierarchy.l3.size_bytes
        daxpy_n = (4 * l3 // 16 // 32) * 32
        # nu=3 gives 12 accumulator chains: enough to cover both FMA
        # ports at 5-cycle latency on the Haswell-class machine
        gemm = Dgemm(variant="tiled", mu=4, nu=3)
        for kernel, n, protocol in ((Daxpy(), daxpy_n, "cold"),
                                    (gemm, 96, "warm")):
            m = measure_kernel(machine, kernel, n, protocol=protocol, reps=1)
            points.append(KernelPoint.from_measurement(m))
            results[(machine.spec.name, kernel.name)] = m.performance
            print(f"  {kernel.name:12s} P = {m.performance / 1e9:6.2f} Gflop/s"
                  f"  I = {m.intensity:.3f} F/B")
        path = os.path.join(out_dir, f"roofline_{machine.spec.name}.svg")
        save_svg(svg_plot(model, points=points,
                          title=f"Roofline: {machine.spec.name}"), path)
        print(f"  -> {path}\n")

    (snb_daxpy, snb_gemm), (hsw_daxpy, hsw_gemm) = (
        [v for (m, _k), v in results.items() if m.startswith("snb")],
        [v for (m, _k), v in results.items() if m.startswith("hsw")],
    )
    print("Cross-platform speedups (HSW/FMA over SNB):")
    print(f"  dgemm-tiled : {hsw_gemm / snb_gemm:.2f}x "
          f"(compute-bound, tracks the doubled FMA roof)")
    print(f"  daxpy       : {hsw_daxpy / snb_daxpy:.2f}x "
          f"(memory-bound, tracks bandwidth — FMA is irrelevant)")


if __name__ == "__main__":
    main()
