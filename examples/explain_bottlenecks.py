#!/usr/bin/env python3
"""Cycle attribution and the cache-aware roofline — beyond the plot.

The classic roofline answers "how far from the bound"; two extensions
in this library answer "which bound" and "served from which level":

* ``explain_kernel`` folds the timing model's per-phase breakdown into
  a report attributing runtime to FP issue, load/store ports,
  dependency chains, cache bandwidths, DRAM, and TLB walks;
* the cache-aware roofline measures one bandwidth ceiling per memory
  level and attributes each kernel point to the level that explains it.

Run:  python examples/explain_bottlenecks.py
"""

from repro import paper_machine
from repro.kernels import Daxpy, Dgemm, Dot, Spmv
from repro.measure import explain_kernel
from repro.roofline import (
    KernelPoint,
    build_cache_aware_roofline,
    level_bandwidth_map,
    served_from,
)
from repro.units import format_bandwidth


def main() -> None:
    machine = paper_machine()
    l3 = machine.spec.hierarchy.l3.size_bytes

    print("=== cycle attribution (why is each kernel the speed it is?) ===\n")
    cases = [
        (Daxpy(), (4 * l3 // 16 // 32) * 32, "cold"),
        (Dgemm(variant="tiled"), 96, "warm"),
        (Dot(accumulators=1), 512, "warm"),
        (Spmv(row_nnz=8, bandwidth=1 << 30, cols=l3 // 2), 8192, "cold"),
    ]
    for kernel, n, protocol in cases:
        report = explain_kernel(machine, kernel, n, protocol=protocol)
        print(report.render())
        print()

    print("=== cache-aware roofline (which level serves each point?) ===\n")
    model = build_cache_aware_roofline(machine)
    for level, bandwidth in level_bandwidth_map(model).items():
        print(f"  {level:5s} ceiling: {format_bandwidth(bandwidth)}")
    print()
    intensity = 2.0 / 24.0  # daxpy's compulsory intensity
    for label, n, protocol in (("L2-resident", 1152, "warm"),
                               ("DRAM-resident", (4 * l3 // 16 // 32) * 32,
                                "cold")):
        from repro.measure import measure_kernel
        m = measure_kernel(machine, Daxpy(), n, protocol=protocol, reps=1)
        point = KernelPoint(label, intensity, m.performance, series=label)
        print(f"  daxpy {label:14s}: {m.performance / 1e9:5.2f} Gflop/s "
              f"-> served from {served_from(model, point)}")


if __name__ == "__main__":
    main()
