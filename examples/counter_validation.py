#!/usr/bin/env python3
"""The measurement pitfalls the paper is about, as a live demo.

Three traps, each shown by measuring a kernel whose true W and Q are
known exactly:

1. FP counters **overcount on cold caches** — µops that wait on cache
   misses are reissued and counted again (validate W with warm caches).
2. Cache-level miss events **undercount behind hardware prefetch** —
   prefetched lines arrive without a demand miss, so LLC-miss-derived
   traffic collapses while the IMC (which sees every CAS) stays honest.
3. The uncore counts the **whole platform** — a single naive counter
   read includes setup stores and background noise; the paper's two-run
   subtraction removes them (our runner applies it automatically, so we
   show the raw pollution explicitly here).

Run:  python examples/counter_validation.py
"""

from repro import paper_machine
from repro.kernels import CodegenCaps, StreamTriad
from repro.measure import (
    TRAFFIC_EVENTS,
    WORK_EVENTS_F64,
    bytes_from_session,
    flops_from_session,
    measure_kernel,
)
from repro.pmu import PerfSession
from repro.units import format_bytes


def main() -> None:
    machine = paper_machine()
    kernel = StreamTriad()
    l3 = machine.spec.hierarchy.l3.size_bytes
    n = (4 * l3 // 24 // 32) * 32  # DRAM-resident, vector-aligned

    print(f"kernel: {kernel.describe()}, n={n} "
          f"({format_bytes(kernel.footprint_bytes(n))} working set)\n")

    # --- trap 1: cold-cache overcount -------------------------------
    warm_n = (machine.spec.hierarchy.l1.size_bytes // 2 // 24 // 32) * 32
    warm = measure_kernel(machine, kernel, warm_n, protocol="warm", reps=2)
    cold = measure_kernel(machine, kernel, n, protocol="cold", reps=2)
    print("1) FP-counter overcount (measured W / true W):")
    print(f"   warm caches: x{warm.work_overcount:.3f}   <- trustworthy")
    print(f"   cold caches: x{cold.work_overcount:.3f}   <- reissue artifact\n")

    # --- trap 2: LLC events undercount behind prefetch ----------------
    machine.prefetch_control.disable_all()
    off = measure_kernel(machine, kernel, n, protocol="cold", reps=2)
    machine.prefetch_control.enable_all()
    expected_reads = 24 * n  # b, c, and the RFO of a
    print("2) Cache-event vs IMC traffic (ratio to expected reads):")
    print(f"   LLC events, prefetch ON : x{cold.llc_bytes / expected_reads:.3f}"
          "   <- prefetch hides the misses")
    print(f"   LLC events, prefetch OFF: x{off.llc_bytes / expected_reads:.3f}")
    print(f"   IMC CAS,    prefetch ON : x{cold.traffic_ratio:.3f}"
          "   <- the paper's method: accurate\n")

    # --- trap 3: naive whole-platform counter read -------------------
    program = kernel.build(n, CodegenCaps.from_machine(machine))
    loaded = machine.load(program)
    machine.bust_caches()
    with PerfSession(machine, core_events=WORK_EVENTS_F64,
                     uncore_events=TRAFFIC_EVENTS, cores=(0,)) as naive:
        machine.advance_tsc(5e7)      # "the process did other things"
        machine.run(loaded, core_id=0)
    raw_q = bytes_from_session(naive)
    print("3) Naive single-run uncore read (no subtraction):")
    print(f"   raw Q      : {format_bytes(raw_q)}")
    print(f"   kernel Q   : {format_bytes(cold.traffic_bytes)} "
          f"(runner's two-run subtraction)")
    print(f"   pollution  : {format_bytes(raw_q - cold.traffic_bytes)} "
          f"of background traffic the subtraction removed")


if __name__ == "__main__":
    main()
