#!/usr/bin/env python3
"""Extending the library: a custom machine and a custom kernel.

Defines a small embedded-class platform from scratch (every knob of the
MachineSpec spelled out), registers a user kernel (waxpby:
``w = a*x + b*y``, a two-flop-per-element stream), and produces the
measured roofline with the kernel's size sweep on it — the workflow a
downstream user follows for their own hardware model and code.

Run:  python examples/custom_machine.py
"""

from repro.cpu import PortModel, TimingParams
from repro.kernels import Kernel, make_kernel, register_kernel
from repro.kernels.base import CodegenCaps, elements_bytes, new_builder, partition_range
from repro.machine import Machine, MachineSpec
from repro.measure import measure_sweep
from repro.memory import CacheConfig, DramConfig, HierarchyConfig, NumaConfig, Topology
from repro.roofline import Trajectory, ascii_plot, build_roofline
from repro.units import KIB, MIB


class Waxpby(Kernel):
    """w[i] = a*x[i] + b*y[i] — three streams, three flops per element."""

    name = "waxpby"

    def build(self, n, caps, rank=0, nranks=1):
        self.validate_n(n, caps, nranks)
        lo, hi = partition_range(n, rank, nranks)
        b = new_builder()
        w = b.buffer("w", elements_bytes(n))
        x = b.buffer("x", elements_bytes(n))
        y = b.buffer("y", elements_bytes(n))
        ca, cb = b.regs(2)
        width, step, base = caps.width_bits, caps.vec_bytes, lo * 8
        with b.loop((hi - lo) // caps.lanes) as i:
            vx = b.load(x[i * step + base], width=width)
            vy = b.load(y[i * step + base], width=width)
            t1 = b.mul(ca, vx, width=width)
            if caps.has_fma:
                out = b.fma(cb, vy, t1, width=width)
            else:
                t2 = b.mul(cb, vy, width=width)
                out = b.add(t1, t2, width=width)
            b.store(out, w[i * step + base], width=width)
        return b.build()

    def flops(self, n):
        return 3 * n  # both codegen paths execute exactly 3n flops

    def compulsory_bytes(self, n):
        return 32 * n  # read x,y (16n); RFO + write back w (16n)

    def footprint_bytes(self, n):
        return 24 * n


def embedded_machine() -> Machine:
    """A 2-core, SSE-only, single-channel platform."""
    spec = MachineSpec(
        name="embedded-2c",
        topology=Topology(sockets=1, cores_per_socket=2),
        ports=PortModel(name="embedded", fp_add_ports=1, fp_mul_ports=1,
                        fma_ports=0, load_ports=1, store_ports=1,
                        load_width_bits=128, store_width_bits=128,
                        max_simd_width=128),
        hierarchy=HierarchyConfig(
            l1=CacheConfig("L1d", 16 * KIB, assoc=4, latency_cycles=3),
            l2=CacheConfig("L2", 128 * KIB, assoc=8, latency_cycles=11),
            l3=CacheConfig("L3", 1 * MIB, assoc=16, latency_cycles=25,
                           bytes_per_cycle=16.0),
            dram=DramConfig(channels=1, bytes_per_cycle_total=6.4,
                            per_core_bytes_per_cycle=4.0,
                            latency_cycles=150),
            numa=NumaConfig(),
        ),
        base_hz=1.2e9,
        timing=TimingParams(),
        noise_lines_per_megacycle=5.0,
    )
    return Machine(spec)


def main() -> None:
    register_kernel("waxpby", Waxpby)
    machine = embedded_machine()
    kernel = make_kernel("waxpby")
    model = build_roofline(machine, cores=(0,))
    print(model)

    l3 = machine.spec.hierarchy.l3.size_bytes
    sizes = [s - s % 32 for s in (l3 // 96, l3 // 24, 4 * l3 // 24)]
    measurements = measure_sweep(machine, kernel, sizes, protocol="cold",
                                 reps=1)
    trajectory = Trajectory.from_measurements("waxpby (cold)", measurements)
    print(ascii_plot(model, trajectories=[trajectory]))
    for m in measurements:
        print(f"n={m.n:>8}: P={m.performance / 1e9:5.2f} Gflop/s, "
              f"I={m.intensity:.3f} F/B, Q/compulsory={m.traffic_ratio:.2f}")


if __name__ == "__main__":
    main()
