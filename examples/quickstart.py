#!/usr/bin/env python3
"""Quickstart: build a measured roofline and place a kernel on it.

Mirrors the paper's minimal workflow:

1. measure the platform (peak flops microbenchmark, bandwidth checks),
2. measure a kernel's work W, traffic Q, and runtime T with the
   two-run counter methodology,
3. plot the kernel point against the roofline and interpret it.

Run:  python examples/quickstart.py
"""

from repro import paper_machine
from repro.kernels import Daxpy
from repro.measure import measure_kernel
from repro.roofline import (
    KernelPoint,
    analyze_point,
    ascii_plot,
    build_roofline,
)
from repro.units import format_bytes, format_flops, format_time


def main() -> None:
    # a 1/8-cache-scale Sandy Bridge-EP socket (see presets docstring)
    machine = paper_machine()
    print(f"platform: {machine}")

    # 1. measure the platform -> the roofline model
    model = build_roofline(machine, cores=(0,))
    print(model)

    # 2. measure daxpy at a DRAM-resident size, cold caches
    n = 1 << 17
    measurement = measure_kernel(machine, Daxpy(), n, protocol="cold",
                                 reps=2)
    print(f"\ndaxpy n={n} ({format_bytes(Daxpy().footprint_bytes(n))} "
          f"working set):")
    print(f"  W counted  {measurement.work_flops:.0f} flops "
          f"(true {measurement.true_flops}, "
          f"overcount x{measurement.work_overcount:.2f})")
    print(f"  Q measured {format_bytes(measurement.traffic_bytes)} "
          f"(compulsory {format_bytes(measurement.compulsory_bytes)})")
    print(f"  T runtime  {format_time(measurement.runtime_seconds)}")
    print(f"  P = {format_flops(measurement.performance)}, "
          f"I = {measurement.intensity:.3f} flops/byte")

    # 3. plot and interpret
    point = KernelPoint.from_measurement(measurement)
    print()
    print(ascii_plot(model, points=[point]))
    print(analyze_point(model, point).summary())


if __name__ == "__main__":
    main()
