#!/usr/bin/env python3
"""Roofline-guided optimisation of dgemm — the paper's use case of
"explaining the efficiency of an existing kernel".

Three implementations of C += A @ B are measured and placed on the same
roofline.  The plot answers the optimisation questions the paper poses:
which kernels are memory bound, which have headroom at their current
intensity, and which are done (near the roof, change the algorithm).

Writes `examples/output/gemm_roofline.svg`.

Run:  python examples/analyze_gemm.py
"""

import os

from repro import paper_machine
from repro.kernels import Dgemm
from repro.measure import measure_kernel
from repro.roofline import (
    Trajectory,
    analyze_point,
    build_roofline,
    save_svg,
    svg_plot,
)


def main() -> None:
    machine = paper_machine()
    model = build_roofline(machine, cores=(0,))
    print(model)
    print()

    sizes = [32, 64, 96]
    trajectories = []
    analyses = []
    for variant in ("naive", "ikj", "tiled"):
        kernel = Dgemm(variant=variant)
        measurements = [
            measure_kernel(machine, kernel, n, protocol="warm", reps=1)
            for n in sizes
        ]
        trajectory = Trajectory.from_measurements(kernel.name, measurements)
        trajectories.append(trajectory)
        analysis = analyze_point(model, trajectory.points[-1])
        analyses.append(analysis)
        print(analysis.summary())

    print()
    tiled = analyses[-1]
    naive = analyses[0]
    print("Interpretation (the judgements the paper draws from its plots):")
    print(f"- {naive.point.series}: {naive.bound}; its intensity is held "
          f"down by the strided B walk — blocking, not micro-tuning, is "
          f"the fix (potential {naive.headroom_factor:.1f}x at its I).")
    print(f"- {tiled.point.series}: {tiled.utilization_of_peak:.0%} of "
          f"peak; with so little headroom, further optimisation of this "
          f"implementation is futile — change the algorithm instead.")

    out_dir = os.path.join(os.path.dirname(__file__), "output")
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, "gemm_roofline.svg")
    save_svg(svg_plot(model, trajectories=trajectories,
                      title="dgemm implementations on one roofline"), path)
    print(f"\nSVG written to {path}")


if __name__ == "__main__":
    main()
