"""Bench S3: timeline sampler overhead and windowing throughput.

Not a paper figure — this measures the observability layer itself.
Three costs matter:

* the *attach tax*: how much slower a run gets when a
  :class:`~repro.trace.TimelineSampler` is on the bus, against both a
  fully untraced run (the zero-overhead baseline) and a
  :class:`~repro.trace.NullSink` (event construction + dispatch with
  no retention — the floor any real sink pays);
* *windowing throughput*: how many windows/sec ``timeline()`` derives
  from an already-collected phase stream.

Run under pytest-benchmark (``pytest benchmarks/bench_s3_timeline.py
--benchmark-only``), or directly (``python benchmarks/
bench_s3_timeline.py --out BENCH_timeline.json``) to regenerate the
committed telemetry baseline that future PRs regress against.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time

from repro.kernels.base import CodegenCaps
from repro.kernels.registry import make_kernel
from repro.machine.presets import tiny_test_machine
from repro.trace import NullSink, TimelineConfig, TimelineSampler

BENCH_KERNEL = "daxpy"
BENCH_N = 4096
BENCH_WINDOW = 500.0


def _make_jobs():
    machine = tiny_test_machine()
    kernel = make_kernel(BENCH_KERNEL)
    caps = CodegenCaps.from_machine(machine)
    program = kernel.build(BENCH_N, caps)
    loaded = machine.load(program)
    return machine, [(loaded, 0)]


def _run(machine, jobs) -> None:
    machine.run_parallel(jobs)


def _run_with_sink(machine, jobs, sink) -> None:
    machine.trace.attach(sink)
    try:
        machine.run_parallel(jobs)
    finally:
        machine.trace.detach()


def _collected_sampler():
    """A sampler that has already swallowed one run's phase stream."""
    machine, jobs = _make_jobs()
    sampler = TimelineSampler(machine, TimelineConfig(BENCH_WINDOW))
    _run_with_sink(machine, jobs, sampler)
    return sampler


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def test_untraced_run_baseline(benchmark):
    machine, jobs = _make_jobs()
    benchmark(_run, machine, jobs)


def test_nullsink_run(benchmark):
    machine, jobs = _make_jobs()
    sink = NullSink()
    benchmark(_run_with_sink, machine, jobs, sink)


def test_sampler_run(benchmark):
    machine, jobs = _make_jobs()
    sampler = TimelineSampler(machine, TimelineConfig(BENCH_WINDOW))
    benchmark(_run_with_sink, machine, jobs, sampler)
    assert sampler.entries  # it actually collected phases


def test_window_binning_throughput(benchmark):
    sampler = _collected_sampler()
    timeline = benchmark(sampler.timeline)
    assert len(timeline) > 1


# ----------------------------------------------------------------------
# standalone baseline writer
# ----------------------------------------------------------------------
def _time(fn, repeats: int = 7) -> float:
    """Median seconds of ``fn()`` over ``repeats`` calls."""
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def collect_baseline(repeats: int = 7) -> dict:
    machine, jobs = _make_jobs()
    _run(machine, jobs)  # warm the process (allocator, bytecode caches)

    untraced = _time(lambda: _run(machine, jobs), repeats)
    null_sink = NullSink()
    nullsink = _time(
        lambda: _run_with_sink(machine, jobs, null_sink), repeats
    )

    def sampled_run():
        sampler = TimelineSampler(machine, TimelineConfig(BENCH_WINDOW))
        _run_with_sink(machine, jobs, sampler)
        return sampler

    sampled = _time(sampled_run, repeats)

    sampler = _collected_sampler()
    timeline = sampler.timeline()
    binning = _time(sampler.timeline, repeats)
    return {
        "bench": "s3_timeline",
        "machine": "tiny",
        "kernel": BENCH_KERNEL,
        "n": BENCH_N,
        "window_cycles": BENCH_WINDOW,
        "repeats": repeats,
        "run_seconds": {
            "untraced": untraced,
            "nullsink": nullsink,
            "sampler": sampled,
        },
        "overhead_vs_untraced": {
            "nullsink": nullsink / untraced,
            "sampler": sampled / untraced,
        },
        "windowing": {
            "phase_entries": len(sampler.entries),
            "windows": len(timeline),
            "seconds": binning,
            "windows_per_second": len(timeline) / binning,
            "entries_per_second": len(sampler.entries) / binning,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="regenerate the timeline telemetry baseline")
    parser.add_argument("--out", default="BENCH_timeline.json")
    parser.add_argument("--repeats", type=int, default=7)
    args = parser.parse_args(argv)
    doc = collect_baseline(repeats=args.repeats)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    over = doc["overhead_vs_untraced"]
    print(f"sampler overhead: x{over['sampler']:.3f} vs untraced "
          f"(nullsink floor x{over['nullsink']:.3f}); "
          f"{doc['windowing']['windows_per_second']:.0f} windows/s; "
          f"written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
