"""Shared helpers for the benchmark harness.

Every ``bench_*`` file regenerates one table or figure of the paper
(ids from DESIGN.md) under pytest-benchmark, printing the reproduced
rows and asserting the experiment's shape checks.  Benchmarks run the
experiments at 1/16 cache scale (vs. 1/8 for the official
EXPERIMENTS.md run) so the full harness stays quick; shapes are
scale-invariant by construction.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Callable

import pytest

from repro.experiments import ExperimentConfig, make_experiment

BENCH_SCALE = 0.0625


@dataclass
class BenchContext:
    """Experiment config plus a capture-bypassing reporter."""

    config: ExperimentConfig
    emit: Callable[[str], None]


@pytest.fixture
def bench_config(request) -> BenchContext:
    capman = request.config.pluginmanager.getplugin("capturemanager")

    def emit(text: str) -> None:
        """Print past pytest's capture so the regenerated rows appear
        inline in ``pytest benchmarks/ --benchmark-only`` output."""
        if capman is not None:
            capman.suspend_global_capture(in_=False)
        sys.stdout.write(text)
        sys.stdout.flush()
        if capman is not None:
            capman.resume_global_capture()

    return BenchContext(
        config=ExperimentConfig(scale=BENCH_SCALE, quick=True, reps=1),
        emit=emit,
    )


def run_experiment(benchmark, experiment_id: str, context: BenchContext):
    """Run one experiment once under the benchmark timer and report."""
    experiment = make_experiment(experiment_id)
    result = benchmark.pedantic(
        lambda: experiment.run(context.config), rounds=1, iterations=1
    )
    context.emit("\n" + result.render() + "\n")
    failed = [c.name for c in result.checks if not c.passed]
    assert result.passed, f"shape checks failed: {failed}"
    return result
