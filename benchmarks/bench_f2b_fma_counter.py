"""Bench F2b: FMA counter increment check.

Regenerates the FMA-vs-ADD counter experiment: one retired FMA
increments the FP event twice, a plain vector op once.
See DESIGN.md experiment index (F2b).
"""

from .conftest import run_experiment


def test_f2b_fma_counter(benchmark, bench_config):
    run_experiment(benchmark, "F2b", bench_config)
