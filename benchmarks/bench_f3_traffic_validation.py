"""Bench F3: Traffic-counter validation figure.

Regenerates the Q validation: LLC-event counting vs IMC CAS
counting, with prefetchers on and off.
See DESIGN.md experiment index (F3).
"""

from .conftest import run_experiment


def test_f3_traffic_validation(benchmark, bench_config):
    run_experiment(benchmark, "F3", bench_config)
