"""Bench S6: span-profiler overhead, disabled and enabled.

Not a paper figure — this bounds the cost of the host-side span
profiler (:mod:`repro.obs.spans`) that PR 6 threaded through the hot
layers.  The acceptance bar is the *disabled* path: every normal run
goes through the instrumentation sites with ``SPANS.enabled`` false, so
that path must stay under 5% of the dgemm sweep benchmark's wall time.

Two measurement strategies, deliberately machine-portable:

* **disabled overhead** is *estimated*, not subtracted: a tight
  microbenchmark pins the per-call cost of a disabled span site (one
  attribute load, a call, the shared null context manager), an enabled
  run of the same sweep counts how many times the sites actually fire
  (span count is deterministic for a fixed workload), and the estimate
  is ``activations x per_call_cost / sweep_seconds``.  An A/B
  subtraction of two ~±2% noisy wall times cannot resolve a ~0.1%
  effect; the product of an exactly-counted quantity and a tightly
  pinned per-call cost can.
* **enabled overhead** is a direct ratio of the same sweep with the
  profiler on vs off — coarse, but it only needs to show profiling
  stays usable (single-digit factor), not pin a small number.

Run directly (``python benchmarks/bench_s6_selfprofile.py --out
BENCH_selfprofile.json``) to regenerate the committed baseline;
``repro benchgate`` holds ``disabled.overhead_fraction`` under the
absolute 0.05 ceiling and watches ``enabled.overhead_factor`` against
the baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.kernels.registry import make_kernel
from repro.machine.presets import tiny_test_machine
from repro.measure import measure_kernel
from repro.obs.spans import SPANS

# the same dgemm sweep bench_s5 gates the engine on — the overhead
# denominator is "the benchmark sweep", not a toy loop
DGEMM_SIZES = (64, 96, 128, 160)
REPS = 3

#: disabled-span microbenchmark iterations
_CALIBRATION_CALLS = 200_000


def _sweep() -> None:
    machine = tiny_test_machine()
    for n in DGEMM_SIZES:
        measure_kernel(machine, make_kernel("dgemm-tiled"), n, reps=REPS)


def _time(fn, repeats: int) -> float:
    """Minimum seconds of ``fn()`` over ``repeats`` calls (same
    least-contamination reasoning as bench_s5)."""
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return min(samples)


def disabled_span_call_ns(calls: int = _CALIBRATION_CALLS,
                          repeats: int = 5) -> float:
    """Per-call cost of a disabled instrumentation site, in ns.

    Measures exactly what a site costs: the ``SPANS("name")`` call plus
    entering and exiting the shared null context manager.  The loop
    overhead itself is measured by an empty loop and subtracted.
    """
    assert not SPANS.enabled
    r = range(calls)

    def with_site():
        for _ in r:
            with SPANS("calibration"):
                pass

    def empty():
        for _ in r:
            pass

    site = _time(with_site, repeats)
    base = _time(empty, repeats)
    return max(site - base, 0.0) * 1e9 / calls


def count_activations() -> int:
    """How many span sites fire during one dgemm sweep.

    Counted from an enabled run's aggregates (plus any records dropped
    past the retention cap); the count is a property of the workload,
    not of the host, so it transfers to the disabled-cost estimate.
    """
    SPANS.reset()
    SPANS.enable()
    try:
        _sweep()
    finally:
        SPANS.disable()
    total = sum(row["count"] for row in SPANS.hotspots(None))
    total += SPANS.dropped
    SPANS.reset()
    return total


def collect_baseline(repeats: int = 3) -> dict:
    _sweep()  # warm the process (bytecode caches, numpy init)
    per_call_ns = disabled_span_call_ns()
    activations = count_activations()
    disabled_seconds = _time(_sweep, repeats)

    def enabled_sweep():
        SPANS.reset()
        SPANS.enable()
        try:
            _sweep()
        finally:
            SPANS.disable()

    enabled_seconds = _time(enabled_sweep, repeats)
    SPANS.reset()
    overhead_fraction = (activations * per_call_ns * 1e-9
                         / disabled_seconds)
    return {
        "bench": "s6_selfprofile",
        "machine": "tiny",
        "repeats": repeats,
        "workload": {
            "kernel": "dgemm-tiled",
            "sizes": list(DGEMM_SIZES),
            "reps": REPS,
        },
        "disabled": {
            "span_call_ns": per_call_ns,
            "activations": activations,
            "overhead_fraction": overhead_fraction,
        },
        "enabled": {
            "overhead_factor": enabled_seconds / disabled_seconds,
        },
        "run_seconds": {
            "disabled": disabled_seconds,
            "enabled": enabled_seconds,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="regenerate the span-profiler overhead baseline")
    parser.add_argument("--out", default="BENCH_selfprofile.json")
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)
    doc = collect_baseline(repeats=args.repeats)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    d, e = doc["disabled"], doc["enabled"]
    print(f"disabled: {d['span_call_ns']:.0f} ns/site x "
          f"{d['activations']} activations = "
          f"{100 * d['overhead_fraction']:.3f}% of the "
          f"{doc['run_seconds']['disabled']:.2f}s sweep")
    print(f"enabled : x{e['overhead_factor']:.3f} sweep slowdown; "
          f"written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
