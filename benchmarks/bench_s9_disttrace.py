"""Bench S9: distributed-telemetry overhead, disabled and enabled.

Not a paper figure — this bounds the cost of the distributed telemetry
plane (:mod:`repro.obs.remote`) the sweep executor grew: trace-context
propagation, always-on flight-recorder breadcrumbs, fault-hook checks,
and (when collecting) worker span capture plus metrics/event transport.

The acceptance bar is the *disabled* path: a serial sweep with
``telemetry=False`` still pays the always-on parts — two flight
breadcrumbs and one fault-hook environment check per point — and that
cost must stay under 2% of the dgemm sweep benchmark's wall time.

Same two measurement strategies as bench_s6, machine-portable by
construction:

* **disabled overhead** is *estimated*, not subtracted: tight
  microbenchmarks pin the per-call cost of one flight-recorder note and
  one fault-hook check, the per-sweep activation counts follow directly
  from the executor's code shape (2 notes + 1 check per point), and the
  estimate is ``sum(count x per_call_cost) / sweep_seconds``.  An A/B
  subtraction of two ~±2% noisy wall times cannot resolve a ~1e-5
  effect; the product of exactly-counted quantities and tightly pinned
  per-call costs can.
* **enabled overhead** is a direct ratio of the same serial sweep with
  full collection (``telemetry=True``: span capture, metrics delta,
  trace-event sample, parent-side merge) vs collection off — coarse,
  but it only needs to show collection stays usable.

Run directly (``python benchmarks/bench_s9_disttrace.py --out
BENCH_disttrace.json``) to regenerate the committed baseline;
``repro benchgate`` holds ``disabled.overhead_fraction`` under the
absolute 0.02 ceiling and watches ``enabled.overhead_factor`` against
the baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.machine.ref import MachineRef
from repro.obs.metrics import REGISTRY
from repro.obs.remote import FlightRecorder, maybe_fault
from repro.obs.spans import SPANS
from repro.sweep import SweepPlan, run_plan

# the same dgemm sweep bench_s5/s6 gate on — the overhead denominator
# is "the benchmark sweep", not a toy loop
DGEMM_SIZES = (64, 96, 128, 160)
REPS = 3

#: per-point always-on work in simulate_point: begin + end breadcrumbs
NOTES_PER_POINT = 2
#: per-point fault-hook checks (one maybe_fault call, two env lookups)
FAULT_CHECKS_PER_POINT = 1

#: microbenchmark iterations
_CALIBRATION_CALLS = 200_000


def _plan() -> SweepPlan:
    plan = SweepPlan()
    plan.add_sweep(MachineRef.of("tiny"), "dgemm-tiled", DGEMM_SIZES,
                   protocol="cold", reps=REPS)
    return plan


def _sweep(telemetry: bool) -> None:
    SPANS.reset()
    REGISTRY.reset()
    run_plan(_plan(), jobs=1, cache=None, telemetry=telemetry)


def _time(fn, repeats: int) -> float:
    """Minimum seconds of ``fn()`` over ``repeats`` calls (same
    least-contamination reasoning as bench_s5/s6)."""
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return min(samples)


def flight_note_ns(calls: int = _CALIBRATION_CALLS,
                   repeats: int = 5) -> float:
    """Per-call cost of one flight-recorder breadcrumb, in ns."""
    ring = FlightRecorder(capacity=256)
    r = range(calls)

    def with_note():
        for _ in r:
            ring.note("bench", "calibration", point="dgemm-tiled:64")

    def empty():
        for _ in r:
            pass

    site = _time(with_note, repeats)
    base = _time(empty, repeats)
    return max(site - base, 0.0) * 1e9 / calls


def fault_check_ns(calls: int = _CALIBRATION_CALLS,
                   repeats: int = 5) -> float:
    """Per-call cost of one inert fault-hook check, in ns."""
    r = range(calls)

    def with_check():
        for _ in r:
            maybe_fault("dgemm-tiled:64")

    def empty():
        for _ in r:
            pass

    site = _time(with_check, repeats)
    base = _time(empty, repeats)
    return max(site - base, 0.0) * 1e9 / calls


def collect_baseline(repeats: int = 3) -> dict:
    _sweep(telemetry=False)  # warm the process
    note_ns = flight_note_ns()
    check_ns = fault_check_ns()
    disabled_seconds = _time(lambda: _sweep(telemetry=False), repeats)
    telemetry_seconds = _time(lambda: _sweep(telemetry=True), repeats)
    SPANS.reset()
    REGISTRY.reset()

    points = len(DGEMM_SIZES)
    notes = NOTES_PER_POINT * points
    checks = FAULT_CHECKS_PER_POINT * points
    overhead_fraction = ((notes * note_ns + checks * check_ns) * 1e-9
                         / disabled_seconds)
    return {
        "bench": "s9_disttrace",
        "machine": "tiny",
        "repeats": repeats,
        "workload": {
            "kernel": "dgemm-tiled",
            "sizes": list(DGEMM_SIZES),
            "reps": REPS,
        },
        "disabled": {
            "flight_note_ns": note_ns,
            "fault_check_ns": check_ns,
            "notes_per_sweep": notes,
            "fault_checks_per_sweep": checks,
            "overhead_fraction": overhead_fraction,
        },
        "enabled": {
            "overhead_factor": telemetry_seconds / disabled_seconds,
        },
        "run_seconds": {
            "disabled": disabled_seconds,
            "telemetry": telemetry_seconds,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="regenerate the distributed-telemetry overhead "
                    "baseline")
    parser.add_argument("--out", default="BENCH_disttrace.json")
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)
    doc = collect_baseline(repeats=args.repeats)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    d, e = doc["disabled"], doc["enabled"]
    print(f"disabled: {d['notes_per_sweep']} notes x "
          f"{d['flight_note_ns']:.0f} ns + {d['fault_checks_per_sweep']} "
          f"checks x {d['fault_check_ns']:.0f} ns = "
          f"{100 * d['overhead_fraction']:.5f}% of the "
          f"{doc['run_seconds']['disabled']:.2f}s sweep")
    print(f"enabled : x{e['overhead_factor']:.3f} sweep slowdown with "
          f"full collection; written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
