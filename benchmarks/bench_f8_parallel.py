"""Bench F8: Parallel roofline figure.

Regenerates the multithreaded rooflines: dgemm scales with cores,
memory-bound daxpy saturates at socket bandwidth.
See DESIGN.md experiment index (F8).
"""

from .conftest import run_experiment


def test_f8_parallel(benchmark, bench_config):
    run_experiment(benchmark, "F8", bench_config)
