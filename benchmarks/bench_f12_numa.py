"""Bench F12: NUMA binding figure.

Regenerates the numactl discipline study: node-bound memory beats
unbound placement on a two-socket platform.
See DESIGN.md experiment index (F12).
"""

from .conftest import run_experiment


def test_f12_numa(benchmark, bench_config):
    run_experiment(benchmark, "F12", bench_config)
