"""Bench S5: two-tier execution engine speedup and plan-cache telemetry.

Not a paper figure — this measures the execution engine itself.  The
fast engine compiles each flat loop's memory side into a cached
:class:`~repro.engine.plan.AccessPlan` and replays it through the
batched datapath; the reference engine dispatches the same emission
stream per line.  Three quantities matter:

* the *wall-clock speedup* of full ``measure_kernel`` sweeps (daxpy —
  bandwidth-bound streaming — and dgemm — the cache-blocked worst case
  for per-line interpretation) with the fast engine vs the reference
  engine,
* the *plan-cache hit rate* over a sweep (the compile tier only pays
  off if the A/B windows, reps, and protocol reruns actually reuse
  plans),
* *per-rep compile amortization*: how per-rep cost falls once plans
  are compiled (rep 1 pays the compile tier, later reps replay).

Run under pytest-benchmark (``pytest benchmarks/bench_s5_engine.py
--benchmark-only``), or directly (``python benchmarks/
bench_s5_engine.py --out BENCH_engine.json``) to regenerate the
committed baseline that future PRs regress against.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.kernels.registry import make_kernel
from repro.machine.presets import tiny_test_machine
from repro.measure import measure_kernel

DAXPY_SIZES = (512, 1024, 2048, 4096)
# cache-resident through DRAM-resident on the tiny machine: the regime
# sweeps actually spend their time in (and where per-line
# interpretation hurts most) is the upper end
DGEMM_SIZES = (64, 96, 128, 160)
REPS = 3  # the measure-runner default: what sweeps actually pay


def _sweep(engine: str, kernel_name: str, sizes) -> "object":
    """One full measurement sweep on a fresh machine; returns machine."""
    machine = tiny_test_machine(engine=engine)
    for n in sizes:
        measure_kernel(machine, make_kernel(kernel_name), n, reps=REPS)
    return machine


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def test_daxpy_sweep_fast(benchmark):
    machine = benchmark(_sweep, "fast", "daxpy", DAXPY_SIZES)
    assert machine.core(0).plan_stats.hits > 0


def test_daxpy_sweep_reference(benchmark):
    machine = benchmark(_sweep, "reference", "daxpy", DAXPY_SIZES)
    assert machine.core(0).plan_stats.lookups == 0


def test_dgemm_sweep_fast(benchmark):
    machine = benchmark(_sweep, "fast", "dgemm-tiled", DGEMM_SIZES)
    assert machine.core(0).plan_stats.hits > 0


def test_dgemm_sweep_reference(benchmark):
    machine = benchmark(_sweep, "reference", "dgemm-tiled", DGEMM_SIZES)
    assert machine.core(0).plan_stats.lookups == 0


# ----------------------------------------------------------------------
# standalone baseline writer
# ----------------------------------------------------------------------
def _time(fn, repeats: int) -> float:
    """Minimum seconds of ``fn()`` over ``repeats`` calls.

    The minimum, not the mean/median: scheduler and cache interference
    only ever add time, so the fastest sample is the least-contaminated
    estimate of the work itself (same reasoning as ``timeit``).
    """
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return min(samples)


def _sweep_baseline(kernel_name: str, sizes, repeats: int) -> dict:
    fast = _time(lambda: _sweep("fast", kernel_name, sizes), repeats)
    ref = _time(lambda: _sweep("reference", kernel_name, sizes), repeats)
    machine = _sweep("fast", kernel_name, sizes)
    plan = machine.core(0).plan_stats
    return {
        "kernel": kernel_name,
        "sizes": list(sizes),
        "reps": REPS,
        "fast_seconds": fast,
        "reference_seconds": ref,
        "speedup": ref / fast,
        "plan_cache": plan.as_dict(),
    }


def _amortization(kernel_name: str, n: int, max_reps: int,
                  repeats: int) -> dict:
    """Per-rep cost of the fast engine as reps grow.

    Each added rep replays already-compiled plans, so the marginal cost
    of a rep (the slope) sits well below the first measurement (which
    pays the compile tier); their ratio is the amortization factor.
    """
    per_rep = {}
    for reps in (1, max_reps):
        seconds = _time(
            lambda r=reps: measure_kernel(
                tiny_test_machine(), make_kernel(kernel_name), n, reps=r
            ),
            repeats,
        )
        per_rep[reps] = seconds
    marginal = (per_rep[max_reps] - per_rep[1]) / (max_reps - 1)
    return {
        "kernel": kernel_name,
        "n": n,
        "first_measurement_seconds": per_rep[1],
        "marginal_rep_seconds": marginal,
        "amortization_factor": per_rep[1] / marginal if marginal > 0
        else float("inf"),
    }


def collect_baseline(repeats: int = 3) -> dict:
    # warm the process (bytecode caches, numpy init)
    _sweep("fast", "daxpy", (256,))
    return {
        "bench": "s5_engine",
        "machine": "tiny",
        "repeats": repeats,
        "sweeps": {
            "daxpy": _sweep_baseline("daxpy", DAXPY_SIZES, repeats),
            "dgemm": _sweep_baseline("dgemm-tiled", DGEMM_SIZES, repeats),
        },
        "amortization": _amortization("daxpy", 4096, 5, repeats),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="regenerate the execution-engine baseline")
    parser.add_argument("--out", default="BENCH_engine.json")
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)
    doc = collect_baseline(repeats=args.repeats)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for name, sweep in doc["sweeps"].items():
        plan = sweep["plan_cache"]
        print(f"{name}: x{sweep['speedup']:.2f} speedup "
              f"(fast {sweep['fast_seconds']:.2f}s vs "
              f"reference {sweep['reference_seconds']:.2f}s), "
              f"plan-cache hit rate {plan['hit_rate']:.3f}")
    amort = doc["amortization"]
    print(f"amortization: first measurement {amort['first_measurement_seconds']:.3f}s, "
          f"marginal rep {amort['marginal_rep_seconds']:.3f}s "
          f"(x{amort['amortization_factor']:.1f}); written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
