"""Bench T1: Platform characteristics table.

Regenerates the paper's platform table: simulated machine
specifications and their theoretical peaks.
See DESIGN.md experiment index (T1).
"""

from .conftest import run_experiment


def test_t1_platforms(benchmark, bench_config):
    run_experiment(benchmark, "T1", bench_config)
