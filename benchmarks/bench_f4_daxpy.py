"""Bench F4: Roofline figure: daxpy.

Regenerates the daxpy roofline trajectory across sizes under cold
and warm protocols; DRAM-resident points ride the bandwidth roof.
See DESIGN.md experiment index (F4).
"""

from .conftest import run_experiment


def test_f4_daxpy(benchmark, bench_config):
    run_experiment(benchmark, "F4", bench_config)
