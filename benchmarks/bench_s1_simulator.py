"""Bench S1: substrate performance (simulator throughput).

Not a paper figure — this measures the *simulator itself* so regressions
in the cache/interpreter hot paths are visible: simulated line-accesses
per second through the full hierarchy, and interpreter throughput on a
streaming kernel.
"""

from repro.kernels import CodegenCaps, Daxpy
from repro.machine.presets import tiny_test_machine


def test_hierarchy_access_throughput(benchmark):
    machine = tiny_test_machine()
    machine.prefetch_control.disable_all()
    port = machine.hierarchy.port(0)
    lines = list(range(20_000))

    def sweep():
        return port.access_lines(lines, is_write=False)

    stats = benchmark(sweep)
    assert stats.accesses == 20_000


def test_interpreter_daxpy_throughput(benchmark):
    machine = tiny_test_machine()
    caps = CodegenCaps.from_machine(machine)
    loaded = machine.load(Daxpy().build(65536, caps))

    def run():
        return machine.run(loaded, core_id=0)

    result = benchmark(run)
    assert result.result.true_flops == 2 * 65536


def test_prefetcher_overhead(benchmark):
    """Same sweep with engines active: quantifies prefetch-path cost."""
    machine = tiny_test_machine()
    port = machine.hierarchy.port(0)
    lines = list(range(20_000))

    def sweep():
        return port.access_lines(lines, is_write=False)

    stats = benchmark(sweep)
    assert stats.accesses == 20_000
