"""Bench F9: Prefetch effect figure.

Regenerates the prefetch study: runtime gain on streams, genuine
traffic overfetch on line-skipping strides.
See DESIGN.md experiment index (F9).
"""

from .conftest import run_experiment


def test_f9_prefetch(benchmark, bench_config):
    run_experiment(benchmark, "F9", bench_config)
