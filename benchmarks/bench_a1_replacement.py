"""Bench A1: Replacement-policy ablation.

Ablation: measured Q under LRU/PLRU/FIFO/random L3 replacement
around the capacity boundary.
See DESIGN.md experiment index (A1).
"""

from .conftest import run_experiment


def test_a1_replacement(benchmark, bench_config):
    run_experiment(benchmark, "A1", bench_config)
