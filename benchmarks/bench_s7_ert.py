"""Bench S7: ERT ceiling-discovery shape of the simulated hierarchy.

Not a paper figure — this pins the *shape* of what ``repro ert``
discovers on the tiny machine, as ratios between the measured ceilings.
Unlike the other bench docs these numbers are simulated quantities
(bytes per simulated second), so they are bit-deterministic and fully
machine-portable: any drift means the measurement path itself changed —
the ERT kernel's codegen, the per-level counter attribution, the cache
timing model, or the sweep executor — not that the host got slower.

Gated ratios (all dimensionless):

* ``l1_over_dram`` / ``l2_over_dram`` / ``l3_over_dram`` — the
  bandwidth hierarchy's spread.  A collapse of ``l1_over_dram`` toward
  1.0 would mean L1-resident probes stopped hitting in L1.
* ``compute_over_dram_ridge`` — the DRAM ridge point of the discovered
  roofline (peak flops / DRAM bytes/s), i.e. where the machine stops
  being memory-bound.

Host wall seconds for the discovery run are carried for humans but
never gated.  Run directly (``python benchmarks/bench_s7_ert.py --out
BENCH_ert.json``) to regenerate the committed baseline; ``repro
benchgate`` compares fresh ratios against it.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.roofline.ert import discover_ceilings

MACHINE = "tiny"


def collect_baseline(repeats: int = 1) -> dict:
    wall = []
    ceilings = None
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        ceilings = discover_ceilings(MACHINE)
        wall.append(time.perf_counter() - start)
    bw = {level: c.bytes_per_second
          for level, c in ceilings.levels.items()}
    compute = ceilings.compute_flops_per_second
    return {
        "bench": "s7_ert",
        "machine": MACHINE,
        "repeats": repeats,
        "ceilings_bytes_per_s": bw,
        "compute_flops_per_s": compute,
        "ratios": {
            "l1_over_dram": bw["L1"] / bw["DRAM"],
            "l2_over_dram": bw["L2"] / bw["DRAM"],
            "l3_over_dram": bw["L3"] / bw["DRAM"],
            "compute_over_dram_ridge": compute / bw["DRAM"],
        },
        "run_seconds": {
            "discovery": min(wall),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="regenerate the ERT ceiling-shape baseline")
    parser.add_argument("--out", default="BENCH_ert.json")
    parser.add_argument("--repeats", type=int, default=1)
    args = parser.parse_args(argv)
    doc = collect_baseline(repeats=args.repeats)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    r = doc["ratios"]
    print(f"hierarchy spread: L1/DRAM x{r['l1_over_dram']:.2f}, "
          f"L2/DRAM x{r['l2_over_dram']:.2f}, "
          f"L3/DRAM x{r['l3_over_dram']:.2f}")
    print(f"DRAM ridge {r['compute_over_dram_ridge']:.3f} F/B; "
          f"discovery took {doc['run_seconds']['discovery']:.2f}s; "
          f"written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
