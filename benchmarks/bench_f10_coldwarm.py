"""Bench F10: Cold-vs-warm protocol figure.

Regenerates the protocol comparison: warm caches filter traffic,
raising measured intensity (the paper's inner-product observation).
See DESIGN.md experiment index (F10).
"""

from .conftest import run_experiment


def test_f10_coldwarm(benchmark, bench_config):
    run_experiment(benchmark, "F10", bench_config)
