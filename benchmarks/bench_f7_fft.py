"""Bench F7: Roofline figure: FFT.

Regenerates the FFT roofline: intermediate intensity growing with
log n while cache-resident.
See DESIGN.md experiment index (F7).
"""

from .conftest import run_experiment


def test_f7_fft(benchmark, bench_config):
    run_experiment(benchmark, "F7", bench_config)
