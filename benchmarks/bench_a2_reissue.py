"""Bench A2: Reissue-interval ablation.

Ablation: the cold-cache W overcount shrinks as replays become
rarer and vanishes when replay latency is hidden.
See DESIGN.md experiment index (A2).
"""

from .conftest import run_experiment


def test_a2_reissue(benchmark, bench_config):
    run_experiment(benchmark, "A2", bench_config)
