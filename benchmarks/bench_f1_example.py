"""Bench F1: Example roofline figure.

Regenerates the illustrative roofline (Figure 1): ceilings, ridge
point, and the min(pi, I*beta) bound.
See DESIGN.md experiment index (F1).
"""

from .conftest import run_experiment


def test_f1_example(benchmark, bench_config):
    run_experiment(benchmark, "F1", bench_config)
