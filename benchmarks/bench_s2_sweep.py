"""Bench S2: sweep engine throughput (executor + result cache).

Not a paper figure — this measures the measurement *pipeline* itself:
how fast a plan's points simulate through the serial executor, and how
much a warm content-addressed cache accelerates replay.  A replay
should be orders of magnitude cheaper than simulation; if the two ever
converge, cache lookup overhead has regressed.
"""

from repro.machine.ref import MachineRef
from repro.sweep import SweepCache, SweepPlan, run_plan


def f4_tiny_plan() -> SweepPlan:
    plan = SweepPlan()
    for protocol in ("cold", "warm"):
        plan.add_sweep(MachineRef.of("tiny"), "daxpy", [128, 512, 2048],
                       protocol=protocol, reps=1)
    return plan


def test_serial_simulation_throughput(benchmark):
    def cold():
        return run_plan(f4_tiny_plan(), jobs=1, cache=None)

    run = benchmark(cold)
    assert len(run.measurements) == 6
    assert run.stats.misses == 6


def test_cache_replay_throughput(benchmark, tmp_path):
    cache = SweepCache(str(tmp_path / "sweepcache"))
    seeded = run_plan(f4_tiny_plan(), cache=cache)
    assert seeded.stats.misses == 6

    def replay():
        return run_plan(f4_tiny_plan(), cache=cache)

    run = benchmark(replay)
    assert run.stats.hit_rate == 1.0


def test_key_hashing_throughput(benchmark):
    from repro.sweep import point_key

    points = list(f4_tiny_plan())

    def hash_all():
        return [point_key(p) for p in points]

    keys = benchmark(hash_all)
    assert len(set(keys)) == len(points)
