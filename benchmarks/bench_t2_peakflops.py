"""Bench T2: Peak computational performance table.

Regenerates the measured-vs-theoretical peak flop/s table produced
by the runtime-generated FP chain microbenchmark (paper section 2.1).
See DESIGN.md experiment index (T2).
"""

from .conftest import run_experiment


def test_t2_peakflops(benchmark, bench_config):
    run_experiment(benchmark, "T2", bench_config)
