"""Bench E2: SpMV roofline extension.

Extension: sparse matrix-vector multiply with a gather-capable ISA;
gather locality moves performance at near-constant intensity.
See DESIGN.md experiment index (E2).
"""

from .conftest import run_experiment


def test_e2_spmv(benchmark, bench_config):
    run_experiment(benchmark, "E2", bench_config)
