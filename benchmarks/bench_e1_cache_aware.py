"""Bench E1: cache-aware roofline extension.

Extension: per-memory-level bandwidth ceilings measured with the same
microbenchmark discipline, placing cache-resident kernels against the
roof of the level they actually work from.
See DESIGN.md experiment index (E1).
"""

from .conftest import run_experiment


def test_e1_cache_aware(benchmark, bench_config):
    run_experiment(benchmark, "E1", bench_config)
