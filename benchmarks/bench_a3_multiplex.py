"""Bench A3: counter-multiplexing ablation.

Ablation: perf-style counter multiplexing misestimates W on bursty
measurement windows once the event set exceeds the programmable slots;
the error shrinks with the rotation quantum.
See DESIGN.md experiment index (A3).
"""

from .conftest import run_experiment


def test_a3_multiplex(benchmark, bench_config):
    run_experiment(benchmark, "A3", bench_config)
