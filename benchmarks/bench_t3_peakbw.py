"""Bench T3: Peak memory bandwidth table.

Regenerates the bandwidth table: read/memset/memcpy/triad and their
non-temporal variants, single-threaded and socket-wide (section 2.2).
See DESIGN.md experiment index (T3).
"""

from .conftest import run_experiment


def test_t3_peakbw(benchmark, bench_config):
    run_experiment(benchmark, "T3", bench_config)
