"""Bench F2: Work-counter validation figure.

Regenerates the W validation: measured/expected flops per kernel,
warm (exact) vs cold (reissue overcount), the paper's core finding.
See DESIGN.md experiment index (F2).
"""

from .conftest import run_experiment


def test_f2_work_validation(benchmark, bench_config):
    run_experiment(benchmark, "F2", bench_config)
