"""Bench F11: Turbo instability figure.

Regenerates the justification for pinning the clock: per-core peak
varies with active cores when Turbo Boost is enabled.
See DESIGN.md experiment index (F11).
"""

from .conftest import run_experiment


def test_f11_turbo(benchmark, bench_config):
    run_experiment(benchmark, "F11", bench_config)
