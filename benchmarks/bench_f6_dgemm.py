"""Bench F6: Roofline figure: dgemm.

Regenerates the dgemm roofline: naive/ikj/register-tiled variants
approaching the compute ceiling.
See DESIGN.md experiment index (F6).
"""

from .conftest import run_experiment


def test_f6_dgemm(benchmark, bench_config):
    run_experiment(benchmark, "F6", bench_config)
