"""Bench F5: Roofline figure: dgemv.

Regenerates the dgemv roofline: row-major vs column-major layouts
and the locality cliff between them.
See DESIGN.md experiment index (F5).
"""

from .conftest import run_experiment


def test_f5_dgemv(benchmark, bench_config):
    run_experiment(benchmark, "F5", bench_config)
